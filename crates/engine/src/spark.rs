//! "Riverbed": the staged, RDD-based engine (Apache Spark semantics).
//!
//! Faithful to §II-A:
//! - RDDs are **lazy** ("computed only when needed") and **ephemeral**
//!   ("once it actually gets materialized, it will be discarded from memory
//!   after its use") — [`Rdd::compute`] re-derives a partition from its
//!   lineage every time unless the RDD was persisted;
//! - **persistence is explicit** ([`Rdd::persist`]) and backed by the
//!   [`crate::cache::BlockCache`];
//! - shuffles are **stage barriers**: a [`Rdd::reduce_by_key`] child cannot
//!   read anything until every parent partition has been fully computed and
//!   partitioned (materialised once per shuffle via `OnceLock`);
//! - **iterations are loop unrolling** (§II-C): the driver builds a new RDD
//!   per round; each round schedules a fresh wave of tasks, visible in the
//!   `tasks_launched` metric.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use flowmark_core::config::{EngineConfig, PartitionerChoice};
use flowmark_sched::{FragmentCache, FragmentKey};
use flowmark_core::spans::PlanTrace;
use flowmark_dataflow::partitioner::{HashPartitioner, Partitioner, RangePartitioner};

use crate::cache::{BlockCache, StorageLevel};
use flowmark_columnar::Checksummable;

use crate::faults::{
    check_cancelled, run_recoverable, CancelToken, FaultPlan, IntegrityError, RecoveryKind,
    StageStats,
};
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::metrics::EngineMetrics;
use crate::runtime::{self, FragmentHandle};
use crate::shuffle::{
    corrupt_one, exchange, partition_combine, partition_records, seal, take_partition, verify,
    Sealed, ShuffleBatch,
};
use crate::sortbuf::CombineFn;

/// Shared driver state.
struct CtxInner {
    cache: BlockCache,
    metrics: EngineMetrics,
    next_id: AtomicUsize,
    /// Every tunable knob, unified (parallelism, buffers, combine,
    /// partitioner, cache budget).
    config: EngineConfig,
    trace: Mutex<PlanTrace>,
    start: Instant,
    faults: FaultPlan,
    stage_stats: StageStats,
    /// Job-level cancellation: set by the serve layer on deadline expiry
    /// or explicit cancel; every staged task observes it at launch.
    cancel: CancelToken,
    /// Pending cross-job fragment-cache attachment, consumed by the
    /// first batch exchange built on this context.
    fragment: Mutex<Option<FragmentHandle>>,
}

/// The driver ("SparkContext"). Cheap to clone.
#[derive(Clone)]
pub struct SparkContext {
    inner: Arc<CtxInner>,
}

impl SparkContext {
    /// Creates a context with a storage-cache budget and default
    /// parallelism (`spark.default.parallelism`); every other knob takes
    /// its [`EngineConfig`] default.
    pub fn new(default_parallelism: usize, cache_bytes: u64) -> Self {
        Self::with_faults(default_parallelism, cache_bytes, FaultPlan::disabled())
    }

    /// Like [`SparkContext::new`], but tasks run under `faults`: injected
    /// (and real) task panics are recovered by lineage re-execution —
    /// recomputing only the lost partition, reusing persisted ancestors
    /// from the block cache — and stragglers race speculative backups.
    pub fn with_faults(
        default_parallelism: usize,
        cache_bytes: u64,
        faults: FaultPlan,
    ) -> Self {
        let config = EngineConfig {
            parallelism: default_parallelism,
            cache_bytes,
            ..EngineConfig::default()
        };
        Self::with_config_and_faults(&config, faults)
    }

    /// The unified constructor: every knob comes from one serializable
    /// [`EngineConfig`] (the surface `flowmark-tune` searches).
    pub fn with_config(config: &EngineConfig) -> Self {
        Self::with_config_and_faults(config, FaultPlan::disabled())
    }

    /// [`SparkContext::with_config`] plus a fault-injection plan.
    pub fn with_config_and_faults(config: &EngineConfig, faults: FaultPlan) -> Self {
        Self::with_config_faults_cancel(config, faults, CancelToken::new())
    }

    /// The full constructor: config, fault plan, and a job-level
    /// [`CancelToken`]. Setting the token tears down any in-flight action
    /// on this context (tasks unwind with a
    /// [`crate::faults::JobCancelled`] payload).
    pub fn with_config_faults_cancel(
        config: &EngineConfig,
        faults: FaultPlan,
        cancel: CancelToken,
    ) -> Self {
        config.validate().expect("invalid engine config");
        Self {
            inner: Arc::new(CtxInner {
                cache: BlockCache::new(config.cache_bytes),
                metrics: EngineMetrics::new(),
                next_id: AtomicUsize::new(0),
                config: *config,
                trace: Mutex::new(PlanTrace::new()),
                start: Instant::now(),
                faults,
                stage_stats: StageStats::new(),
                cancel,
                fragment: Mutex::new(None),
            }),
        }
    }

    /// Attach a cross-job fragment-cache handle: the next batch
    /// exchange ([`Rdd::exchange_by_index`]) built on this context
    /// looks `key` up in `cache` before computing — a checksum-verified
    /// hit reuses the cached sealed stage output and skips the whole
    /// map+exchange — and stores its own verified output there on a
    /// miss.
    pub fn register_fragment(&self, cache: Arc<FragmentCache>, key: FragmentKey) {
        *self.inner.fragment.lock() = Some((cache, key));
    }

    fn take_fragment(&self) -> Option<FragmentHandle> {
        self.inner.fragment.lock().take()
    }

    /// The configuration this context runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The fault plan tasks run under.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// The job-level cancellation token every task on this context polls.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.inner.cancel
    }

    /// Run metrics handle.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.inner.metrics
    }

    /// Operator spans recorded so far (one per shuffle/action).
    pub fn trace(&self) -> PlanTrace {
        self.inner.trace.lock().clone()
    }

    /// Default number of partitions for shuffles.
    pub fn default_parallelism(&self) -> usize {
        self.inner.config.parallelism
    }

    fn next_id(&self) -> usize {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn record_span(&self, name: &str, started: Instant) {
        let t0 = started.duration_since(self.inner.start).as_secs_f64();
        let t1 = self.inner.start.elapsed().as_secs_f64();
        self.inner.trace.lock().record(name.to_string(), t0, t1);
    }

    /// Distributes a local collection into `partitions` chunks.
    pub fn parallelize<T: Clone + Send + Sync + 'static>(
        &self,
        data: Vec<T>,
        partitions: usize,
    ) -> Rdd<T> {
        assert!(partitions > 0);
        let chunk = data.len().div_ceil(partitions).max(1);
        let parts: Vec<Vec<T>> = data
            .chunks(chunk)
            .map(<[T]>::to_vec)
            .chain(std::iter::repeat_with(Vec::new))
            .take(partitions)
            .collect();
        let metrics = self.metrics().clone();
        metrics.add_records_read(parts.iter().map(Vec::len).sum::<usize>() as u64);
        Rdd::new(
            self.clone(),
            partitions,
            Arc::new(SourceOp { parts }),
        )
    }
}

/// How a partition of this RDD is derived.
trait RddOp<T>: Send + Sync {
    fn compute(&self, part: usize) -> Vec<T>;
}

struct SourceOp<T> {
    parts: Vec<Vec<T>>,
}

impl<T: Clone + Send + Sync> RddOp<T> for SourceOp<T> {
    fn compute(&self, part: usize) -> Vec<T> {
        self.parts[part].clone()
    }
}

/// A lazy, partitioned, lineage-bearing dataset.
pub struct Rdd<T> {
    ctx: SparkContext,
    id: usize,
    partitions: usize,
    op: Arc<dyn RddOp<T>>,
    storage: StorageLevel,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Self {
            ctx: self.ctx.clone(),
            id: self.id,
            partitions: self.partitions,
            op: Arc::clone(&self.op),
            storage: self.storage,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    fn new(ctx: SparkContext, partitions: usize, op: Arc<dyn RddOp<T>>) -> Self {
        let id = ctx.next_id();
        Self {
            ctx,
            id,
            partitions,
            op,
            storage: StorageLevel::None,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions
    }

    /// Marks this RDD persistent at the given level (§II-A: "the user can
    /// explicitly mark them as persistent").
    pub fn persist(mut self, level: StorageLevel) -> Self {
        self.storage = level;
        self
    }

    /// Computes one partition: serve from cache when persisted, otherwise
    /// recompute from lineage (and cache the result when persisted).
    pub fn compute(&self, part: usize) -> Arc<Vec<T>> {
        if self.storage != StorageLevel::None {
            if let Some(block) = self.ctx.inner.cache.get((self.id, part)) {
                self.ctx.metrics().add_cache_hits(1);
                return block.downcast::<Vec<T>>().expect("cache type confusion");
            }
            self.ctx.metrics().add_cache_misses(1);
        }
        self.ctx.metrics().add_compute_calls(1);
        let data = Arc::new(self.op.compute(part));
        if self.storage != StorageLevel::None {
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            self.ctx.inner.cache.put(
                (self.id, part),
                data.clone(),
                bytes.max(1),
                self.storage,
            );
        }
        data
    }

    fn compute_all(&self) -> Vec<Arc<Vec<T>>> {
        self.ctx
            .metrics()
            .add_tasks_launched(self.partitions as u64);
        let plan = self.ctx.faults();
        let cancel = self.ctx.cancel_token();
        let mode = self.ctx.config().executor;
        if !plan.active() {
            return runtime::run_stage(mode, self.ctx.metrics(), self.partitions, |p| {
                check_cancelled(cancel, self.ctx.metrics(), self.id as u64, p);
                self.compute(p)
            });
        }
        // Stage = this RDD; one recoverable task per partition. A retry
        // walks the RddOp chain again, so persisted ancestors come back
        // from the cache instead of being recomputed (lineage recovery).
        runtime::run_stage(mode, self.ctx.metrics(), self.partitions, |p| {
            run_recoverable(
                plan,
                self.ctx.metrics(),
                Some(&self.ctx.inner.stage_stats),
                RecoveryKind::Lineage,
                self.id as u64,
                p,
                cancel,
                &|| self.compute(p),
            )
        })
    }

    // ---- narrow transformations -----------------------------------------

    /// Element-wise map.
    pub fn map<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(NarrowOp {
                parent,
                f: move |input: Arc<Vec<T>>| input.iter().map(&f).collect(),
            }),
        )
    }

    /// One-to-many map.
    pub fn flat_map<U, I, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(NarrowOp {
                parent,
                f: move |input: Arc<Vec<T>>| input.iter().flat_map(&f).collect(),
            }),
        )
    }

    /// Predicate filter.
    pub fn filter<F>(&self, f: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(NarrowOp {
                parent,
                // Retain in place: a uniquely-held partition is filtered
                // with zero copies; only cached parents pay for a clone.
                f: move |input: Arc<Vec<T>>| {
                    let mut data = take_partition(input);
                    data.retain(|t| f(t));
                    data
                },
            }),
        )
    }

    /// Whole-partition map (`mapPartitions`).
    pub fn map_partitions<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(NarrowOp {
                parent,
                f: move |input: Arc<Vec<T>>| f(&input),
            }),
        )
    }

    // ---- actions ---------------------------------------------------------

    /// Gathers every record to the driver.
    pub fn collect(&self) -> Vec<T> {
        let started = Instant::now();
        let parts = self.compute_all();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.append(&mut take_partition(p));
        }
        self.ctx.record_span("collect", started);
        out
    }

    /// Counts records.
    pub fn count(&self) -> u64 {
        let started = Instant::now();
        let n = self
            .compute_all()
            .iter()
            .map(|p| p.len() as u64)
            .sum();
        self.ctx.record_span("count", started);
        n
    }

    /// Folds every record with a commutative, associative function.
    pub fn reduce<F>(&self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Send + Sync,
    {
        let started = Instant::now();
        let out = self
            .compute_all()
            .into_iter()
            .filter_map(|p| take_partition(p).into_iter().reduce(&f))
            .reduce(&f);
        self.ctx.record_span("reduce", started);
        out
    }
}

struct NarrowOp<T, U, F>
where
    F: Fn(Arc<Vec<T>>) -> Vec<U> + Send + Sync,
{
    parent: Rdd<T>,
    f: F,
}

impl<T, U, F> RddOp<U> for NarrowOp<T, U, F>
where
    T: Clone + Send + Sync + 'static,
    U: Send + Sync,
    F: Fn(Arc<Vec<T>>) -> Vec<U> + Send + Sync,
{
    fn compute(&self, part: usize) -> Vec<U> {
        (self.f)(self.parent.compute(part))
    }
}

// ---- pair-RDD (shuffle) operations ---------------------------------------

impl<K, V> Rdd<(K, V)>
where
    K: Clone + Send + Sync + Hash + Ord + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// `reduceByKey`: map-side combine, hash shuffle on
    /// `spark.default.parallelism` partitions, reduce. The shuffle is a
    /// stage barrier (§VI-C).
    pub fn reduce_by_key<F>(&self, f: F) -> Rdd<(K, V)>
    where
        F: Fn(&mut V, V) + Send + Sync + 'static,
    {
        self.reduce_by_key_with(f, self.ctx.default_parallelism())
    }

    /// `reduceByKey` with an explicit partition count.
    pub fn reduce_by_key_with<F>(&self, f: F, partitions: usize) -> Rdd<(K, V)>
    where
        F: Fn(&mut V, V) + Send + Sync + 'static,
    {
        let combine: CombineFn<V> = Arc::new(f);
        let parent = self.clone();
        let ctx = self.ctx.clone();
        let config = *self.ctx.config();
        let shuffled = Arc::new(ShuffleOp::new(partitions, move || {
            let started = Instant::now();
            let parts = parent.compute_all();
            // Partitioner choice (§IV): hash routing by default; a
            // sampled range partitioner balances skewed key spaces and
            // sorts reducer inputs. Built once per shuffle so every map
            // task routes identically.
            let partitioner: Arc<dyn Partitioner<K> + Send + Sync> = match config.partitioner {
                PartitionerChoice::Hash => Arc::new(HashPartitioner::new(partitions)),
                PartitionerChoice::Range => {
                    let sample: Vec<K> = parts
                        .iter()
                        .flat_map(|p| p.iter().step_by(7).map(|(k, _)| k.clone()))
                        .collect();
                    Arc::new(RangePartitioner::from_sample(sample, partitions))
                }
            };
            let map_outputs: Vec<_> =
                runtime::run_stage_items(config.executor, ctx.metrics(), parts, |_, p| {
                    let records = take_partition(p);
                    let mut out = if config.combine_enabled {
                        partition_combine(
                            records,
                            partitioner.as_ref(),
                            Arc::clone(&combine),
                            config.combine_buffer_records,
                            config.spill_run_budget,
                            ctx.metrics(),
                            std::mem::size_of::<(K, V)>(),
                        )
                    } else {
                        partition_records(
                            records,
                            partitioner.as_ref(),
                            ctx.metrics(),
                            std::mem::size_of::<(K, V)>(),
                        )
                    };
                    // A deduplicated range sample can yield fewer buckets
                    // than the declared partition count.
                    if out.len() < partitions {
                        out.resize_with(partitions, Vec::new);
                    }
                    out
                });
            let reduce_inputs = exchange(map_outputs);
            let combine = Arc::clone(&combine);
            let out: Vec<Vec<(K, V)>> =
                runtime::run_stage_items(config.executor, ctx.metrics(), reduce_inputs, |_, records| {
                    let mut agg: FxHashMap<K, V> = fx_map_with_capacity(records.len());
                    for (k, v) in records {
                        match agg.entry(k) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                combine(e.get_mut(), v)
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(v);
                            }
                        }
                    }
                    agg.into_iter().collect()
                });
            ctx.record_span("shuffle:reduceByKey", started);
            out
        }));
        Rdd::new(self.ctx.clone(), partitions, shuffled)
    }

    /// `repartitionAndSortWithinPartitions` with an arbitrary partitioner —
    /// the TeraSort primitive (§III).
    pub fn repartition_and_sort_within_partitions<P>(&self, partitioner: Arc<P>) -> Rdd<(K, V)>
    where
        P: Partitioner<K> + Send + Sync + 'static,
    {
        let parent = self.clone();
        let ctx = self.ctx.clone();
        let partitions = partitioner.partitions();
        let shuffled = Arc::new(ShuffleOp::new(partitions, move || {
            let started = Instant::now();
            let mode = ctx.config().executor;
            let map_outputs: Vec<_> =
                runtime::run_stage_items(mode, ctx.metrics(), parent.compute_all(), |_, p| {
                    partition_records(
                        take_partition(p),
                        partitioner.as_ref(),
                        ctx.metrics(),
                        std::mem::size_of::<(K, V)>(),
                    )
                });
            let reduce_inputs = exchange(map_outputs);
            let reduce_inputs =
                runtime::run_stage_items(mode, ctx.metrics(), reduce_inputs, |_, mut part| {
                    part.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    part
                });
            ctx.record_span("shuffle:repartitionAndSort", started);
            reduce_inputs
        }));
        Rdd::new(self.ctx.clone(), partitions, shuffled)
    }

    /// Inner hash join on the key.
    pub fn join<W>(&self, other: &Rdd<(K, W)>) -> Rdd<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let partitions = self.ctx.default_parallelism();
        let left = self.clone();
        let right = other.clone();
        let ctx = self.ctx.clone();
        let shuffled = Arc::new(ShuffleOp::new(partitions, move || {
            let started = Instant::now();
            let partitioner = HashPartitioner::new(partitions);
            let mode = ctx.config().executor;
            let lo: Vec<_> =
                runtime::run_stage_items(mode, ctx.metrics(), left.compute_all(), |_, p| {
                    partition_records(
                        take_partition(p),
                        &partitioner,
                        ctx.metrics(),
                        std::mem::size_of::<(K, V)>(),
                    )
                });
            let ro: Vec<_> =
                runtime::run_stage_items(mode, ctx.metrics(), right.compute_all(), |_, p| {
                    partition_records(
                        take_partition(p),
                        &partitioner,
                        ctx.metrics(),
                        std::mem::size_of::<(K, W)>(),
                    )
                });
            let li = exchange(lo);
            let ri = exchange(ro);
            let pairs: Vec<_> = li.into_iter().zip(ri).collect();
            let out: Vec<Vec<(K, (V, W))>> =
                runtime::run_stage_items(mode, ctx.metrics(), pairs, |_, (lpart, rpart)| {
                    let mut table: FxHashMap<K, Vec<V>> = fx_map_with_capacity(lpart.len());
                    for (k, v) in lpart {
                        table.entry(k).or_default().push(v);
                    }
                    let mut joined = Vec::new();
                    for (k, w) in rpart {
                        if let Some(vs) = table.get(&k) {
                            for v in vs {
                                joined.push((k.clone(), (v.clone(), w.clone())));
                            }
                        }
                    }
                    joined
                });
            ctx.record_span("shuffle:join", started);
            out
        }));
        Rdd::new(self.ctx.clone(), partitions, shuffled)
    }

    /// `collectAsMap`: the K-Means per-iteration action (§VI-D, Fig 10's
    /// `map->collectAsMap` waves).
    pub fn collect_as_map(&self) -> HashMap<K, V> {
        let started = Instant::now();
        let parts = self.compute_all();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut out = HashMap::with_capacity(total);
        for p in parts {
            out.extend(take_partition(p));
        }
        self.ctx.record_span("collectAsMap", started);
        out
    }
}

// ---- batch-granularity shuffle --------------------------------------------

impl<B> Rdd<(usize, B)>
where
    B: ShuffleBatch + Checksummable + Clone + Send + Sync + 'static,
{
    /// Batch-granularity shuffle: each element is a whole pre-routed batch
    /// tagged with its reduce partition index, and the exchange moves the
    /// batch as one unit — one clone-free `Vec` push per *batch* instead of
    /// one `(K, V)` clone per *record*. Map tasks route rows into per-reducer
    /// batches themselves (e.g. [`flowmark_columnar::StrU64Batch::partition_by`])
    /// and tag them; this op only regroups.
    ///
    /// Every batch is checksummed at write and verified at read: a batch
    /// whose digest no longer matches poisons its reduce partition, which
    /// is recomputed from lineage (the whole map side re-runs — its output
    /// was discarded with the stage). Corruption that survives the retry
    /// budget escapes as a typed [`IntegrityError`].
    pub fn exchange_by_index(&self, partitions: usize) -> Rdd<B> {
        self.exchange_by_index_with(partitions, |b| b)
    }

    /// [`Rdd::exchange_by_index`] plus a per-partition `finish` step (merge,
    /// sort, compact) that runs *inside* the shuffle materialisation — its
    /// output, not the raw batch list, is what the `OnceLock` stores and
    /// recomputations clone, so heavy post-processing never pays the
    /// per-partition serve copy twice. `finish` only ever sees batches that
    /// passed digest verification.
    pub fn exchange_by_index_with<F>(&self, partitions: usize, finish: F) -> Rdd<B>
    where
        F: Fn(Vec<B>) -> Vec<B> + Send + Sync + 'static,
    {
        let parent = self.clone();
        let ctx = self.ctx.clone();
        let stage = self.id as u64;
        // Claimed at plan-construction time: the first batch exchange
        // built after `register_fragment` owns the cache attachment.
        let fragment = ctx.take_fragment();
        let shuffled = Arc::new(ShuffleOp::new(partitions, move || {
            let started = Instant::now();
            let plan = ctx.faults().clone();
            let seed = plan.checksum_seed();
            let mode = ctx.config().executor;
            // A checksum-verified cache hit replaces the whole
            // map+exchange with the cached sealed reduce inputs; only
            // `finish` still runs. A failed verification invalidated the
            // entry inside the lookup, so falling through recomputes.
            if let Some(handle) = &fragment {
                if let Some(cached) = runtime::fragment_lookup::<B>(handle, ctx.metrics()) {
                    let out: Vec<Vec<B>> =
                        runtime::run_stage_items(mode, ctx.metrics(), cached, |_, part| {
                            finish(part.into_iter().map(|(_, b)| b).collect())
                        });
                    ctx.record_span("shuffle:exchangeByIndex(cached)", started);
                    return out;
                }
            }
            let mut attempt: u32 = 0;
            let reduce_inputs = loop {
                // Map side: digest every routed batch at write time, then
                // (under an active plan) damage one shipped batch *after*
                // its digest was taken — the stale digest is what the read
                // side must catch.
                let map_outputs: Vec<Vec<Vec<Sealed<B>>>> =
                    runtime::run_stage_items(mode, ctx.metrics(), parent.compute_all(), |mp, p| {
                        let mut out: Vec<Vec<Sealed<B>>> =
                            (0..partitions).map(|_| Vec::new()).collect();
                        for (idx, batch) in take_partition(p) {
                            assert!(idx < partitions, "batch routed to partition {idx} of {partitions}");
                            ctx.metrics().add_records_shuffled(batch.rows() as u64);
                            ctx.metrics().add_bytes_shuffled(batch.bytes() as u64);
                            ctx.metrics().add_batches_processed(1);
                            out[idx].push(seal(batch, seed, ctx.metrics()));
                        }
                        if let Some((kind, salt)) = plan.corrupt_decision(stage, mp, attempt) {
                            corrupt_one(&mut out, kind, salt);
                        }
                        out
                    });
                let reduce_inputs = exchange(map_outputs);
                // Read side: recompute every digest before any reducer
                // touches the rows. A mismatch poisons the whole reduce
                // partition — its other batches are fine, but the lineage
                // recompute regenerates all of them anyway.
                let poisoned: Vec<usize> = {
                    let parts = &reduce_inputs;
                    runtime::run_stage(mode, ctx.metrics(), parts.len(), |r| {
                        let bad = parts[r].iter().filter(|s| !verify(s, seed)).count();
                        (bad > 0).then(|| {
                            ctx.metrics().add_corruptions_detected(bad as u64);
                            for _ in 0..bad {
                                plan.confirm_corruption();
                            }
                            r
                        })
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                };
                if poisoned.is_empty() {
                    break reduce_inputs;
                }
                attempt += 1;
                if attempt >= plan.max_attempts() {
                    std::panic::panic_any(IntegrityError {
                        at: (stage, poisoned[0], attempt - 1),
                        detail: "shuffle-read checksum mismatch survived the retry budget",
                    });
                }
                ctx.metrics().add_integrity_recomputes(poisoned.len() as u64);
                ctx.metrics().add_partitions_recomputed(poisoned.len() as u64);
                ctx.metrics().add_task_retries(poisoned.len() as u64);
            };
            // Every batch just verified clean: this is the reusable
            // fragment, stored pre-`finish` so a hit can re-verify the
            // digests before trusting it.
            if let Some(handle) = &fragment {
                runtime::fragment_store(handle, ctx.metrics(), seed, &reduce_inputs);
            }
            let out: Vec<Vec<B>> =
                runtime::run_stage_items(mode, ctx.metrics(), reduce_inputs, |_, part| {
                    finish(part.into_iter().map(|(_, b)| b).collect())
                });
            ctx.record_span("shuffle:exchangeByIndex", started);
            out
        }));
        Rdd::new(self.ctx.clone(), partitions, shuffled)
    }
}

// ---- additional narrow/wide transformations -------------------------------

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    /// `union`: concatenates two RDDs partition-wise (narrow, no shuffle).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let left = self.clone();
        let right = other.clone();
        let split = left.num_partitions();
        let total = split + right.num_partitions();
        Rdd::new(
            self.ctx.clone(),
            total,
            Arc::new(UnionOp { left, right, split }),
        )
    }

    /// `sample`: deterministic Bernoulli sample with the given fraction and
    /// seed (per-partition deterministic, like Spark's seeded sample).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(SampleOp {
                parent,
                fraction,
                seed,
            }),
        )
    }

    /// `coalesce`: merges partitions down to `n` without a shuffle
    /// (consecutive partitions are concatenated).
    pub fn coalesce(&self, n: usize) -> Rdd<T> {
        assert!(n > 0, "coalesce needs at least one partition");
        let parent = self.clone();
        let n = n.min(self.partitions);
        Rdd::new(
            self.ctx.clone(),
            n,
            Arc::new(CoalesceOp { parent, n }),
        )
    }

    /// `mapPartitionsWithIndex`: whole-partition map that also sees the
    /// partition index (Table I lists it for Spark's graph loading).
    pub fn map_partitions_with_index<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd::new(
            self.ctx.clone(),
            self.partitions,
            Arc::new(IndexedOp { parent, f }),
        )
    }

    /// `take`: the first `n` records in partition order (action).
    pub fn take(&self, n: usize) -> Vec<T> {
        let started = Instant::now();
        let mut out = Vec::with_capacity(n);
        for p in 0..self.partitions {
            if out.len() >= n {
                break;
            }
            let part = self.compute(p);
            out.extend(part.iter().take(n - out.len()).cloned());
        }
        self.ctx.record_span("take", started);
        out
    }
}

impl<T> Rdd<T>
where
    T: Clone + Send + Sync + std::hash::Hash + Ord + 'static,
{
    /// `distinct`: deduplicates via a shuffle (wide).
    pub fn distinct(&self) -> Rdd<T> {
        self.map(|t| (t.clone(), ()))
            .reduce_by_key(|_, _| {})
            .map(|(t, _)| t.clone())
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Clone + Send + Sync + Hash + Ord + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// `groupByKey`: full grouping without a combiner (the expensive
    /// pattern `reduceByKey` exists to avoid).
    pub fn group_by_key(&self) -> Rdd<(K, Vec<V>)> {
        self.map(|(k, v)| (k.clone(), vec![v.clone()]))
            .reduce_by_key(|acc, mut v| acc.append(&mut v))
    }

    /// `sortByKey`: total sort via a sampled range partitioner.
    pub fn sort_by_key(&self) -> Rdd<(K, V)> {
        // Sample inside each partition: only every 7th key is ever cloned,
        // instead of materialising the full key column on the driver.
        let sample: Vec<K> = self
            .map_partitions(|part| part.iter().step_by(7).map(|(k, _)| k.clone()).collect())
            .collect();
        let parts = self.ctx.default_parallelism();
        let partitioner = Arc::new(
            flowmark_dataflow::partitioner::RangePartitioner::from_sample(sample, parts),
        );
        self.repartition_and_sort_within_partitions(partitioner)
    }

    /// `countByKey` (action).
    pub fn count_by_key(&self) -> HashMap<K, u64> {
        self.map(|(k, _)| (k.clone(), 1u64))
            .reduce_by_key(|a, b| *a += b)
            .collect_as_map()
    }

    /// `keys` projection.
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k.clone())
    }

    /// `values` projection.
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v.clone())
    }

    /// `cogroup`: groups both sides by key (the substrate of GraphX's
    /// vertex/edge joins).
    pub fn cogroup<W>(&self, other: &Rdd<(K, W)>) -> Rdd<(K, (Vec<V>, Vec<W>))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let left = self.map(|(k, v)| (k.clone(), (Some(v.clone()), None::<W>)));
        let right = other.map(|(k, w)| (k.clone(), (None::<V>, Some(w.clone()))));
        left.union(&right)
            .map(|(k, vw)| (k.clone(), vec![vw.clone()]))
            .reduce_by_key(|acc, mut v| acc.append(&mut v))
            .map(|(k, tagged)| {
                let mut vs = Vec::new();
                let mut ws = Vec::new();
                for (v, w) in tagged {
                    if let Some(v) = v {
                        vs.push(v.clone());
                    }
                    if let Some(w) = w {
                        ws.push(w.clone());
                    }
                }
                (k.clone(), (vs, ws))
            })
    }
}

struct UnionOp<T> {
    left: Rdd<T>,
    right: Rdd<T>,
    split: usize,
}

impl<T: Clone + Send + Sync + 'static> RddOp<T> for UnionOp<T> {
    fn compute(&self, part: usize) -> Vec<T> {
        if part < self.split {
            take_partition(self.left.compute(part))
        } else {
            take_partition(self.right.compute(part - self.split))
        }
    }
}

struct SampleOp<T> {
    parent: Rdd<T>,
    fraction: f64,
    seed: u64,
}

impl<T: Clone + Send + Sync + 'static> RddOp<T> for SampleOp<T> {
    fn compute(&self, part: usize) -> Vec<T> {
        // Deterministic per-record coin flips from a splitmix stream.
        let data = self.parent.compute(part);
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(part as u64);
        data.iter()
            .filter(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                u < self.fraction
            })
            .cloned()
            .collect()
    }
}

struct CoalesceOp<T> {
    parent: Rdd<T>,
    n: usize,
}

impl<T: Clone + Send + Sync + 'static> RddOp<T> for CoalesceOp<T> {
    fn compute(&self, part: usize) -> Vec<T> {
        let parents = self.parent.num_partitions();
        let mut out = Vec::new();
        // Partition `part` owns the parent partitions ≡ part (mod n).
        let mut p = part;
        while p < parents {
            out.append(&mut take_partition(self.parent.compute(p)));
            p += self.n;
        }
        out
    }
}

struct IndexedOp<T, U, F>
where
    F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
{
    parent: Rdd<T>,
    f: F,
}

impl<T, U, F> RddOp<U> for IndexedOp<T, U, F>
where
    T: Clone + Send + Sync + 'static,
    U: Send + Sync,
    F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
{
    fn compute(&self, part: usize) -> Vec<U> {
        (self.f)(part, &self.parent.compute(part))
    }
}

/// A shuffle dependency: materialised exactly once, then served per
/// partition — Spark's shuffle files outliving the stage that wrote them.
/// Element-generic: `T` is a `(K, V)` pair on the record path or a whole
/// column batch on the batch-granularity path.
struct ShuffleOp<T> {
    partitions: usize,
    materialise: Box<dyn Fn() -> Vec<Vec<T>> + Send + Sync>,
    output: OnceLock<Vec<Vec<T>>>,
}

impl<T> ShuffleOp<T> {
    fn new<F>(partitions: usize, materialise: F) -> Self
    where
        F: Fn() -> Vec<Vec<T>> + Send + Sync + 'static,
    {
        Self {
            partitions,
            materialise: Box::new(materialise),
            output: OnceLock::new(),
        }
    }
}

impl<T> RddOp<T> for ShuffleOp<T>
where
    T: Clone + Send + Sync,
{
    fn compute(&self, part: usize) -> Vec<T> {
        debug_assert!(part < self.partitions);
        let all = self.output.get_or_init(|| (self.materialise)());
        all[part].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SparkContext {
        SparkContext::new(4, 64 << 20)
    }

    #[test]
    fn parallelize_partitions_everything() {
        let sc = ctx();
        let rdd = sc.parallelize((0..100).collect::<Vec<u32>>(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        let mut all = rdd.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn map_filter_count() {
        let sc = ctx();
        let rdd = sc.parallelize((0..1000).collect::<Vec<u32>>(), 4);
        let n = rdd.map(|x| x * 2).filter(|x| x % 3 == 0).count();
        assert_eq!(n, 334); // 0,6,12,...,1998 → x*2 % 3 == 0 ⇔ x % 3 == 0
    }

    #[test]
    fn reduce_by_key_matches_oracle() {
        let sc = ctx();
        let words: Vec<(String, u64)> = (0..2000)
            .map(|i| (format!("w{}", i % 37), 1u64))
            .collect();
        let rdd = sc.parallelize(words, 8);
        let counts = rdd.reduce_by_key(|a, b| *a += b).collect_as_map();
        assert_eq!(counts.len(), 37);
        let total: u64 = counts.values().sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn rdds_are_ephemeral_without_persist() {
        let sc = ctx();
        let rdd = sc.parallelize((0..10).collect::<Vec<u32>>(), 2).map(|x| x + 1);
        let calls_before = sc.metrics().compute_calls();
        let _ = rdd.count();
        let _ = rdd.count();
        let calls_after = sc.metrics().compute_calls();
        // Two actions recompute the lineage twice: 2 × (2 map + 2 source).
        assert_eq!(calls_after - calls_before, 8);
    }

    #[test]
    fn persist_truncates_recomputation() {
        let sc = ctx();
        let rdd = sc
            .parallelize((0..10).collect::<Vec<u32>>(), 2)
            .map(|x| x + 1)
            .persist(StorageLevel::MemoryOnly);
        let _ = rdd.count(); // computes + caches
        let calls_mid = sc.metrics().compute_calls();
        let _ = rdd.count(); // served from cache
        assert_eq!(sc.metrics().compute_calls(), calls_mid);
        assert_eq!(sc.metrics().cache_hits(), 2);
    }

    #[test]
    fn shuffle_materialises_once() {
        let sc = ctx();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let counts = sc.parallelize(pairs, 4).reduce_by_key(|a, b| *a += b);
        let shuffles_before = sc.metrics().records_shuffled();
        let _ = counts.count();
        let shuffled_once = sc.metrics().records_shuffled() - shuffles_before;
        let _ = counts.count();
        // Second action reuses the materialised shuffle output.
        assert_eq!(sc.metrics().records_shuffled() - shuffles_before, shuffled_once);
        assert!(shuffled_once > 0);
    }

    #[test]
    fn map_side_combine_shrinks_shuffle() {
        let sc = ctx();
        // 10_000 records, only 3 distinct keys.
        let pairs: Vec<(String, u64)> = (0..10_000)
            .map(|i| (format!("k{}", i % 3), 1u64))
            .collect();
        let _ = sc
            .parallelize(pairs, 4)
            .reduce_by_key(|a, b| *a += b)
            .collect();
        // At most keys×partitions×buckets records cross the shuffle.
        assert!(sc.metrics().records_shuffled() <= 3 * 4 * 4);
        assert!(sc.metrics().combine_ratio() < 0.05);
    }

    #[test]
    fn repartition_and_sort_sorts_within_partitions() {
        let sc = ctx();
        let pairs: Vec<(u32, u32)> = (0..1000u32).rev().map(|i| (i, i)).collect();
        let part = Arc::new(flowmark_dataflow::partitioner::RangePartitioner::new(vec![
            250u32, 500, 750,
        ]));
        let sorted = sc
            .parallelize(pairs, 4)
            .repartition_and_sort_within_partitions(part);
        for p in 0..sorted.num_partitions() {
            let data = sorted.compute(p);
            assert!(data.windows(2).all(|w| w[0].0 <= w[1].0), "partition {p}");
        }
        // Global order: concatenation of partitions is fully sorted.
        let mut all = Vec::new();
        for p in 0..sorted.num_partitions() {
            all.extend(sorted.compute(p).iter().map(|kv| kv.0));
        }
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn join_matches_oracle() {
        let sc = ctx();
        let left: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into()), (2, "c".into())];
        let right: Vec<(u32, u64)> = vec![(2, 20), (3, 30)];
        let joined = sc.parallelize(left, 2).join(&sc.parallelize(right, 2));
        let mut out = joined.collect();
        out.sort_by(|a, b| a.1 .1.cmp(&b.1 .1).then(a.1 .0.cmp(&b.1 .0)));
        assert_eq!(
            out,
            vec![
                (2, ("b".to_string(), 20)),
                (2, ("c".to_string(), 20))
            ]
        );
    }

    #[test]
    fn loop_unrolling_launches_tasks_per_iteration() {
        let sc = ctx();
        let data = sc
            .parallelize((0..100).map(|i| i as f64).collect::<Vec<_>>(), 4)
            .persist(StorageLevel::MemoryOnly);
        let mut centroid = 0.0f64;
        let before = sc.metrics().tasks_launched();
        for _ in 0..5 {
            let c = centroid;
            let sum = sc
                .parallelize(vec![0.0f64], 1) // trivial guard rdd, unused
                .map(|_| 0.0)
                .count(); // keep the driver honest about laziness
            let _ = sum;
            centroid = data.map(move |x| x + c).reduce(|a, b| a + b).unwrap() / 100.0;
            sc.metrics().add_iterations_run(1);
        }
        let launched = sc.metrics().tasks_launched() - before;
        // Each iteration schedules a fresh wave (≥ 4 tasks per round).
        assert!(launched >= 5 * 4, "launched only {launched}");
        assert_eq!(sc.metrics().iterations_run(), 5);
    }

    #[test]
    fn union_concatenates() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u32, 2], 2);
        let b = sc.parallelize(vec![3u32, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        let mut all = u.collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn distinct_deduplicates() {
        let sc = ctx();
        let rdd = sc.parallelize(vec![3u32, 1, 3, 2, 1, 1], 3);
        let mut out = rdd.distinct().collect();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let sc = ctx();
        let rdd = sc.parallelize((0..10_000u32).collect::<Vec<_>>(), 4);
        let s1 = rdd.sample(0.25, 7).count();
        let s2 = rdd.sample(0.25, 7).count();
        assert_eq!(s1, s2);
        assert!((s1 as f64 - 2500.0).abs() < 300.0, "sampled {s1}");
        assert_eq!(rdd.sample(0.0, 7).count(), 0);
        assert_eq!(rdd.sample(1.0, 7).count(), 10_000);
    }

    #[test]
    fn coalesce_preserves_data() {
        let sc = ctx();
        let rdd = sc.parallelize((0..100u32).collect::<Vec<_>>(), 8);
        let c = rdd.coalesce(3);
        assert_eq!(c.num_partitions(), 3);
        let mut all = c.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
        // Coalescing beyond the parent count clamps.
        assert_eq!(rdd.coalesce(100).num_partitions(), 8);
    }

    #[test]
    fn map_partitions_with_index_sees_indices() {
        let sc = ctx();
        let rdd = sc.parallelize(vec![0u32; 12], 4);
        let tagged = rdd.map_partitions_with_index(|i, part| vec![(i, part.len())]);
        let mut out = tagged.collect();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn take_respects_partition_order() {
        let sc = ctx();
        let rdd = sc.parallelize((0..100u32).collect::<Vec<_>>(), 4);
        assert_eq!(rdd.take(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(rdd.take(0).len(), 0);
        assert_eq!(rdd.take(1000).len(), 100);
    }

    #[test]
    fn group_by_key_and_count_by_key() {
        let sc = ctx();
        let pairs: Vec<(u32, u32)> = vec![(1, 10), (2, 20), (1, 11), (1, 12)];
        let rdd = sc.parallelize(pairs, 2);
        let grouped = rdd.group_by_key().collect_as_map();
        let mut ones = grouped[&1].clone();
        ones.sort_unstable();
        assert_eq!(ones, vec![10, 11, 12]);
        assert_eq!(grouped[&2], vec![20]);
        let counts = rdd.count_by_key();
        assert_eq!(counts[&1], 3);
        assert_eq!(counts[&2], 1);
    }

    #[test]
    fn sort_by_key_totally_orders() {
        let sc = ctx();
        let pairs: Vec<(u32, u32)> = (0..500u32).rev().map(|i| (i, i)).collect();
        let sorted = sc.parallelize(pairs, 4).sort_by_key();
        let mut all = Vec::new();
        for p in 0..sorted.num_partitions() {
            all.extend(sorted.compute(p).iter().map(|kv| kv.0));
        }
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cogroup_groups_both_sides() {
        let sc = ctx();
        let left: Vec<(u32, &str)> = vec![(1, "a"), (1, "b"), (2, "c")];
        let right: Vec<(u32, u32)> = vec![(1, 10), (3, 30)];
        let left = sc.parallelize(left.into_iter().map(|(k, v)| (k, v.to_string())).collect::<Vec<_>>(), 2);
        let right = sc.parallelize(right, 2);
        let cg = left.cogroup(&right).collect_as_map();
        let (mut vs, ws) = cg[&1].clone();
        vs.sort();
        assert_eq!(vs, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(ws, vec![10]);
        assert_eq!(cg[&2].0, vec!["c".to_string()]);
        assert!(cg[&2].1.is_empty());
        assert!(cg[&3].0.is_empty());
        assert_eq!(cg[&3].1, vec![30]);
    }

    #[test]
    fn keys_values_projections() {
        let sc = ctx();
        let rdd = sc.parallelize(vec![(1u32, "x".to_string()), (2, "y".to_string())], 2);
        let mut ks = rdd.keys().collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 2]);
        let mut vs = rdd.values().collect();
        vs.sort();
        assert_eq!(vs, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn trace_records_shuffle_and_action_spans() {
        let sc = ctx();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1)).collect();
        let _ = sc.parallelize(pairs, 2).reduce_by_key(|a, b| *a += b).collect();
        let trace = sc.trace();
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"shuffle:reduceByKey"));
        assert!(names.contains(&"collect"));
    }

    #[test]
    fn lineage_recovery_reproduces_the_fault_free_result() {
        use crate::faults::{FaultConfig, FaultPlan};
        let pairs: Vec<(u32, u64)> = (0..2000).map(|i| (i % 37, 1)).collect();
        let clean = ctx()
            .parallelize(pairs.clone(), 4)
            .reduce_by_key(|a, b| *a += b)
            .collect_as_map();

        let sc = SparkContext::with_faults(
            4,
            64 << 20,
            FaultPlan::new(FaultConfig {
                seed: 11,
                task_failure_prob: 0.5,
                ..FaultConfig::default()
            }),
        );
        let faulted = sc
            .parallelize(pairs, 4)
            .reduce_by_key(|a, b| *a += b)
            .collect_as_map();
        assert_eq!(faulted, clean);
        assert!(sc.metrics().injected_failures() > 0, "no fault fired");
        assert!(sc.metrics().partitions_recomputed() > 0);
        assert_eq!(
            sc.metrics().task_retries(),
            sc.metrics().partitions_recomputed(),
            "staged-engine retries are lineage recomputations"
        );
    }

    #[test]
    fn lineage_recovery_reuses_persisted_ancestors() {
        use crate::faults::{FaultConfig, FaultPlan};
        // Kill every first attempt of every task: the persisted parent's
        // tasks retry once and cache; the child's retries then hit the
        // cache instead of recomputing the parent partitions.
        let sc = SparkContext::with_faults(
            2,
            64 << 20,
            FaultPlan::new(FaultConfig {
                seed: 5,
                task_failure_prob: 1.0,
                ..FaultConfig::default()
            }),
        );
        let parent = sc
            .parallelize((0..100u64).collect::<Vec<_>>(), 2)
            .map(|x| x * 2)
            .persist(StorageLevel::MemoryOnly);
        let _ = parent.count(); // materialise + cache the parent
        let hits_before = sc.metrics().cache_hits();
        let total: u64 = {
            let child = parent.map(|x| x + 1);
            child.collect().into_iter().sum()
        };
        assert_eq!(total, (0..100u64).map(|x| 2 * x + 1).sum());
        assert!(
            sc.metrics().cache_hits() > hits_before,
            "retried child tasks should reuse the persisted parent"
        );
    }

    /// Routes `0..n` into per-reducer `Vec<u64>` batches of 8 rows each.
    fn routed_batches(sc: &SparkContext, n: u64, parts: usize) -> Rdd<Vec<u64>> {
        let batches: Vec<(usize, Vec<u64>)> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(8)
            .map(|c| ((c[0] as usize / 8) % parts, c.to_vec()))
            .collect();
        sc.parallelize(batches, parts).exchange_by_index(parts)
    }

    #[test]
    fn batch_exchange_checksums_every_batch_fault_free() {
        let sc = ctx();
        let rdd = routed_batches(&sc, 160, 4);
        let mut all: Vec<u64> = rdd.collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..160).collect::<Vec<u64>>());
        let rec = sc.metrics().recovery();
        assert_eq!(rec.batches_checksummed, 20, "one digest per shipped batch");
        assert_eq!(rec.corruptions_detected, 0);
        assert_eq!(rec.integrity_recomputes, 0);
    }

    #[test]
    fn batch_exchange_detects_and_recovers_from_corruption() {
        use crate::faults::{FaultConfig, FaultPlan};
        let sc = SparkContext::with_faults(
            4,
            64 << 20,
            FaultPlan::new(FaultConfig {
                seed: 11,
                corrupt_first_n: 1,
                ..FaultConfig::default()
            }),
        );
        let rdd = routed_batches(&sc, 160, 4);
        let mut all: Vec<u64> = rdd.collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..160).collect::<Vec<u64>>(), "recovery must restore the data");
        let rec = sc.metrics().recovery();
        assert!(rec.corruptions_detected >= 1, "armed corruption must be caught");
        assert!(rec.integrity_recomputes >= 1, "detection must trigger a recompute");
        assert!(rec.partitions_recomputed >= 1);
        assert_eq!(rec.region_restarts, 0, "staged recovery is lineage, not regions");
    }

    #[test]
    fn corruption_surviving_the_retry_budget_is_a_typed_failure() {
        use crate::faults::{FaultConfig, FaultPlan, IntegrityError};
        use std::panic::AssertUnwindSafe;
        // A budget far above max_attempts × map tasks keeps injection armed
        // through every retry, so the exchange must escalate.
        let sc = SparkContext::with_faults(
            4,
            64 << 20,
            FaultPlan::new(FaultConfig {
                seed: 13,
                corrupt_first_n: 1_000,
                max_attempts: 3,
                ..FaultConfig::default()
            }),
        );
        let rdd = routed_batches(&sc, 160, 4);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| rdd.collect()))
            .expect_err("unrecoverable corruption must fail the job");
        let err = payload
            .downcast_ref::<IntegrityError>()
            .expect("failure payload must be the typed IntegrityError");
        assert_eq!(err.detail, "shuffle-read checksum mismatch survived the retry budget");
    }
}
