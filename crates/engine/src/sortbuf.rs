//! The sort-based combiner with bounded memory.
//!
//! Flink's aggregation "collect\[s\] records in a memory buffer and sort\[s\]
//! the buffer when it is filled" (§VI-A) — the mechanism behind the
//! anti-cyclic CPU/disk pattern in Fig 3: CPU spikes while sorting, the
//! drained run then goes to disk while the CPU idles. This module is that
//! component: a fixed-capacity buffer of key-value pairs that sorts,
//! combines and emits a *run* whenever full, then merge-combines all runs.
//!
//! The same component runs inside the staged engine when the tungsten-sort
//! shuffle manager is selected ("a memory efficient sort-based shuffle",
//! §IV-B).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::memory::BufferPool;
use crate::metrics::EngineMetrics;

/// A combine function folding a value into an accumulator.
pub type CombineFn<V> = Arc<dyn Fn(&mut V, V) + Send + Sync>;

/// A run sorter: puts a full insert buffer into ascending key order before
/// the run is adjacent-combined. Installing one (see
/// [`SortCombineBuffer::with_run_sorter`]) replaces the comparison sort in
/// the drain hot path — e.g. [`radix_run_sorter`] for `u64` keys.
pub type RunSorter<K, V> = Arc<dyn Fn(&mut Vec<(K, V)>) + Send + Sync>;

/// A [`RunSorter`] for `u64`-keyed runs: computes the stable LSD radix
/// permutation over the flat key column
/// ([`flowmark_columnar::kernels::radix_sort_u64`]) and applies it in one
/// gather pass, avoiding per-record comparisons entirely.
pub fn radix_run_sorter<V: Send + Sync + 'static>() -> RunSorter<u64, V> {
    Arc::new(|buf: &mut Vec<(u64, V)>| {
        let keys: Vec<u64> = buf.iter().map(|(k, _)| *k).collect();
        let perm = flowmark_columnar::kernels::radix_sort_u64(&keys);
        let mut slots: Vec<Option<(u64, V)>> = std::mem::take(buf).into_iter().map(Some).collect();
        buf.extend(perm.iter().map(|&i| {
            slots[i as usize]
                .take()
                .expect("radix permutation visits each row exactly once")
        }));
    })
}

/// Sort-based combine buffer.
///
/// Allocation discipline (the shuffle hot path): the insert buffer is
/// allocated once at construction and reused across every run — a drain
/// sorts it in place and moves records out with `drain(..)`, which keeps
/// the backing storage. Run storage comes from an optional shared
/// [`BufferPool`], so a worker that drains hundreds of runs recycles a
/// handful of allocations instead of hitting the allocator per run.
pub struct SortCombineBuffer<K, V> {
    capacity: usize,
    buffer: Vec<(K, V)>,
    runs: Vec<Vec<(K, V)>>,
    combine: CombineFn<V>,
    metrics: EngineMetrics,
    bytes_per_record: usize,
    pool: Option<Arc<BufferPool<(K, V)>>>,
    run_sorter: Option<RunSorter<K, V>>,
}

impl<K: Ord + Clone, V> SortCombineBuffer<K, V> {
    /// Creates a buffer holding at most `capacity` records before sorting
    /// and emitting a run.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(
        capacity: usize,
        bytes_per_record: usize,
        combine: CombineFn<V>,
        metrics: EngineMetrics,
    ) -> Self {
        assert!(capacity > 0, "sort buffer needs capacity");
        Self {
            capacity,
            buffer: Vec::with_capacity(capacity),
            runs: Vec::new(),
            combine,
            metrics,
            bytes_per_record,
            pool: None,
            run_sorter: None,
        }
    }

    /// Installs a [`RunSorter`] used instead of the comparison sort when a
    /// run drains (e.g. [`radix_run_sorter`] for `u64` keys). The sorter
    /// must leave the buffer in ascending key order; each invocation is
    /// counted in the `radix_sort_runs` metric.
    pub fn with_run_sorter(mut self, sorter: RunSorter<K, V>) -> Self {
        self.run_sorter = Some(sorter);
        self
    }

    /// Like [`SortCombineBuffer::new`], but run storage is taken from (and
    /// returned to) `pool`, shared with the worker's other buffers.
    pub fn with_pool(
        capacity: usize,
        bytes_per_record: usize,
        combine: CombineFn<V>,
        metrics: EngineMetrics,
        pool: Arc<BufferPool<(K, V)>>,
    ) -> Self {
        let mut buf = Self::new(capacity, bytes_per_record, combine, metrics);
        buf.pool = Some(pool);
        buf
    }

    /// Inserts one record, sorting/combining/draining when the buffer fills.
    pub fn insert(&mut self, key: K, value: V) {
        self.buffer.push((key, value));
        if self.buffer.len() >= self.capacity {
            self.drain_run();
        }
    }

    /// Number of completed runs so far (each run models one spill).
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    fn take_run_storage(&mut self, capacity: usize) -> Vec<(K, V)> {
        let Some(pool) = &self.pool else {
            return Vec::with_capacity(capacity);
        };
        match pool.try_take(capacity) {
            Ok(buf) => buf,
            Err(_) => {
                // Pool exhausted: the managed-memory discipline is to free
                // storage ourselves, not allocate past the budget. Merging
                // the completed runs early returns their shells to the pool,
                // then the request is retried (falling back to a fresh
                // allocation only when even compaction freed nothing).
                self.metrics.add_pool_exhausted(1);
                self.compact_runs();
                let pool = self.pool.as_ref().expect("checked above");
                pool.try_take(capacity)
                    .unwrap_or_else(|_| Vec::with_capacity(capacity))
            }
        }
    }

    /// Early merge of all completed runs into one, freeing their storage —
    /// the spill response to [`crate::memory::PoolExhausted`].
    fn compact_runs(&mut self) {
        if self.runs.len() < 2 {
            return;
        }
        let runs = std::mem::take(&mut self.runs);
        let merged = merge_combine(runs, &self.combine, self.pool.as_deref());
        self.runs.push(merged);
    }

    fn drain_run(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.metrics.add_combine_input(self.buffer.len() as u64);
        // Runs that arrive already in key order (pre-sorted upstream
        // output) skip sorting entirely — one linear scan decides.
        let presorted = self.buffer.windows(2).all(|w| w[0].0 <= w[1].0);
        if !presorted {
            match &self.run_sorter {
                Some(sorter) => {
                    sorter(&mut self.buffer);
                    self.metrics.add_radix_sort_runs(1);
                }
                None => self.buffer.sort_unstable_by(|a, b| a.0.cmp(&b.0)),
            }
        }
        // Run-level sortedness is asserted once, here; downstream
        // `merge_combine` trusts it instead of defensively re-sorting.
        debug_assert!(
            self.buffer.windows(2).all(|w| w[0].0 <= w[1].0),
            "run sorter must leave the buffer in ascending key order"
        );
        // Drain keeps the insert buffer's allocation for the next run.
        let mut run = self.take_run_storage(self.buffer.len() / 2 + 1);
        for (k, v) in self.buffer.drain(..) {
            match run.last_mut() {
                Some((lk, lv)) if *lk == k => (self.combine)(lv, v),
                _ => run.push((k, v)),
            }
        }
        self.metrics.add_combine_output(run.len() as u64);
        self.metrics
            .add_bytes_spilled((run.len() * self.bytes_per_record) as u64);
        self.metrics.add_spill_events(1);
        self.runs.push(run);
    }

    /// Finalises: drains the residual buffer and merge-combines all runs
    /// into one sorted, fully-combined output.
    pub fn finish(mut self) -> Vec<(K, V)> {
        self.drain_run();
        let runs = std::mem::take(&mut self.runs);
        merge_combine(runs, &self.combine, self.pool.as_deref())
    }
}

/// K-way merge of sorted runs, combining equal keys across runs. Spent run
/// shells go back to `pool` when one is given.
fn merge_combine<K: Ord + Clone, V>(
    mut runs: Vec<Vec<(K, V)>>,
    combine: &CombineFn<V>,
    pool: Option<&BufferPool<(K, V)>>,
) -> Vec<(K, V)> {
    // Every run was emitted sorted by `drain_run` (asserted there), so the
    // merge never re-sorts — it only interleaves.
    debug_assert!(runs
        .iter()
        .all(|r| r.windows(2).all(|w| w[0].0 <= w[1].0)));
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("len checked"),
        _ => {}
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    // Reversed runs let `pop()` yield records in key order while leaving
    // each run's allocation intact for recycling.
    for run in &mut runs {
        run.reverse();
    }
    // Heap of (key, run-index); ties broken by run index for determinism.
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(runs.len());
    let mut heads: Vec<Option<V>> = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some((k, v)) = run.pop() {
            heap.push(Reverse((k, i)));
            heads.push(Some(v));
        } else {
            heads.push(None);
        }
    }
    let mut out: Vec<(K, V)> = Vec::with_capacity(total);
    while let Some(Reverse((k, i))) = heap.pop() {
        let v = heads[i].take().expect("head present for queued run");
        if let Some((nk, nv)) = runs[i].pop() {
            heap.push(Reverse((nk, i)));
            heads[i] = Some(nv);
        }
        match out.last_mut() {
            Some((lk, lv)) if *lk == k => combine(lv, v),
            _ => out.push((k, v)),
        }
    }
    if let Some(pool) = pool {
        for run in runs {
            pool.put(run);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sum_combiner() -> CombineFn<u64> {
        Arc::new(|acc: &mut u64, v: u64| *acc += v)
    }

    fn oracle(pairs: &[(String, u64)]) -> HashMap<String, u64> {
        let mut m = HashMap::new();
        for (k, v) in pairs {
            *m.entry(k.clone()).or_insert(0) += v;
        }
        m
    }

    #[test]
    fn combines_within_one_run() {
        let metrics = EngineMetrics::new();
        let mut buf = SortCombineBuffer::new(100, 16, sum_combiner(), metrics.clone());
        for w in ["b", "a", "b", "a", "a"] {
            buf.insert(w.to_string(), 1);
        }
        let out = buf.finish();
        assert_eq!(
            out,
            vec![("a".to_string(), 3), ("b".to_string(), 2)]
        );
        assert!((metrics.combine_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn spills_runs_when_capacity_exceeded() {
        let metrics = EngineMetrics::new();
        let mut buf = SortCombineBuffer::new(4, 16, sum_combiner(), metrics.clone());
        let pairs: Vec<(String, u64)> = (0..20).map(|i| (format!("k{}", i % 3), 1)).collect();
        for (k, v) in &pairs {
            buf.insert(k.clone(), *v);
        }
        assert!(buf.runs() >= 4, "expected multiple runs, got {}", buf.runs());
        let out = buf.finish();
        let expect = oracle(&pairs);
        assert_eq!(out.len(), expect.len());
        for (k, v) in &out {
            assert_eq!(expect[k], *v);
        }
        // Output is sorted.
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(metrics.spill_events() >= 4);
        assert!(metrics.bytes_spilled() > 0);
    }

    #[test]
    fn merge_combines_across_runs() {
        // Same key in every run must still collapse to one output record.
        let metrics = EngineMetrics::new();
        let mut buf = SortCombineBuffer::new(2, 16, sum_combiner(), metrics);
        for _ in 0..10 {
            buf.insert("hot".to_string(), 1);
            buf.insert("cold".to_string(), 1);
        }
        let out = buf.finish();
        assert_eq!(
            out,
            vec![("cold".to_string(), 10), ("hot".to_string(), 10)]
        );
    }

    #[test]
    fn empty_buffer_finishes_empty() {
        let buf: SortCombineBuffer<String, u64> =
            SortCombineBuffer::new(8, 16, sum_combiner(), EngineMetrics::new());
        assert!(buf.finish().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = SortCombineBuffer::<String, u64>::new(0, 16, sum_combiner(), EngineMetrics::new());
    }

    #[test]
    fn pooled_buffer_matches_unpooled_and_recycles() {
        use crate::memory::BufferPool;
        let pool = Arc::new(BufferPool::new(8));
        let metrics = EngineMetrics::new();
        let mut pooled = SortCombineBuffer::with_pool(
            4,
            16,
            sum_combiner(),
            metrics.clone(),
            Arc::clone(&pool),
        );
        let mut plain = SortCombineBuffer::new(4, 16, sum_combiner(), EngineMetrics::new());
        let pairs: Vec<(String, u64)> = (0..100).map(|i| (format!("k{}", i % 7), 1)).collect();
        for (k, v) in &pairs {
            pooled.insert(k.clone(), *v);
            plain.insert(k.clone(), *v);
        }
        assert_eq!(pooled.finish(), plain.finish());
        // The merge returned every spent run shell to the pool.
        assert!(pool.pooled() > 0, "no run storage was recycled");
        // A second buffer on the same pool (how `partition_combine` shares
        // one pool across all of a map task's buckets) draws those shells
        // back out instead of allocating.
        let mut second = SortCombineBuffer::with_pool(
            4,
            16,
            sum_combiner(),
            metrics.clone(),
            Arc::clone(&pool),
        );
        for (k, v) in &pairs {
            second.insert(k.clone(), *v);
        }
        let _ = second.finish();
        assert!(pool.reuses() > 0, "pool never served a reuse");
        // Metrics are identical to the unpooled path by construction.
        assert_eq!(metrics.combine_input(), 200);
        assert!(metrics.spill_events() >= 25);
    }

    #[test]
    fn pool_exhaustion_triggers_early_merge_not_allocation() {
        use crate::memory::BufferPool;
        // At most 2 outstanding run buffers: the third drain must compact
        // the existing runs (freeing their shells) instead of growing.
        let pool = Arc::new(BufferPool::with_limit(8, 2));
        let metrics = EngineMetrics::new();
        let mut buf = SortCombineBuffer::with_pool(
            4,
            16,
            sum_combiner(),
            metrics.clone(),
            Arc::clone(&pool),
        );
        let pairs: Vec<(String, u64)> = (0..200).map(|i| (format!("k{i}"), 1)).collect();
        for (k, v) in &pairs {
            buf.insert(k.clone(), *v);
        }
        assert!(
            metrics.pool_exhausted() >= 1,
            "50 distinct-key runs through a 2-buffer budget must exhaust"
        );
        assert!(
            buf.runs() <= 3,
            "compaction must keep the run count near the budget, got {}",
            buf.runs()
        );
        let out = buf.finish();
        let expect = oracle(&pairs);
        assert_eq!(out.len(), expect.len());
        for (k, v) in &out {
            assert_eq!(expect[k], *v, "key {k}");
        }
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "output stays sorted");
        assert!(
            pool.outstanding() <= 2 + 1,
            "outstanding stayed near the cap, got {}",
            pool.outstanding()
        );
    }

    #[test]
    fn radix_run_sorter_matches_comparison_path() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let pairs: Vec<(u64, u64)> = (0..3000)
            .map(|_| (rng.gen_range(0..500u64), rng.gen_range(1..4)))
            .collect();
        let metrics = EngineMetrics::new();
        let mut radix = SortCombineBuffer::new(64, 16, sum_combiner(), metrics.clone())
            .with_run_sorter(radix_run_sorter());
        let mut plain = SortCombineBuffer::new(64, 16, sum_combiner(), EngineMetrics::new());
        for &(k, v) in &pairs {
            radix.insert(k, v);
            plain.insert(k, v);
        }
        assert_eq!(radix.finish(), plain.finish());
        assert!(
            metrics.radix_sort_runs() > 0,
            "the radix sorter never replaced a comparison sort"
        );
    }

    #[test]
    fn presorted_runs_skip_the_sort_entirely() {
        // Keys inserted in ascending order: every drained run is already
        // sorted, so the installed radix sorter must never fire.
        let metrics = EngineMetrics::new();
        let mut buf = SortCombineBuffer::new(8, 16, sum_combiner(), metrics.clone())
            .with_run_sorter(radix_run_sorter());
        for k in 0..100u64 {
            buf.insert(k, 1);
        }
        let out = buf.finish();
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(
            metrics.radix_sort_runs(),
            0,
            "sorted input must take the skip path, not the sorter"
        );
    }

    #[test]
    fn matches_oracle_on_random_input() {
        use rand::Rng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        use rand::SeedableRng;
        let pairs: Vec<(String, u64)> = (0..5000)
            .map(|_| (format!("w{}", rng.gen_range(0..200)), rng.gen_range(1..5)))
            .collect();
        let mut buf = SortCombineBuffer::new(64, 16, sum_combiner(), EngineMetrics::new());
        for (k, v) in &pairs {
            buf.insert(k.clone(), *v);
        }
        let out = buf.finish();
        let expect = oracle(&pairs);
        assert_eq!(out.len(), expect.len());
        for (k, v) in &out {
            assert_eq!(expect[k], *v, "key {k}");
        }
    }
}
