//! Memory management: the heap model vs. the managed-segment model.
//!
//! §VIII of the paper: "Memory management plays a crucial role in the
//! execution of a workload ... as opposed to Spark, Flink does not
//! accumulate lots of objects on the heap but stores them in a dedicated
//! memory region". Two allocators model that dichotomy:
//!
//! - [`HeapBudget`] — Spark-like: a single heap budget shared by storage and
//!   execution; exceeding it is a hard failure ("if the size of the heap is
//!   not sufficient, the job dies"), and *pressure* (live/total ratio)
//!   drives a GC-overhead estimate.
//! - [`ManagedPool`] — Flink-like: a fixed pool of fixed-size segments;
//!   exhaustion is not a failure but a *spill signal* ("most of the
//!   operators are implemented so that they can survive with very little
//!   memory, spilling to disk when necessary").

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Error returned when a heap allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently live.
    pub live: u64,
    /// Heap capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "java.lang.OutOfMemoryError: requested {} bytes with {}/{} live",
            self.requested, self.live, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Spark-like heap accounting: all execution and storage memory comes from
/// one JVM heap. Thread-safe; clones share the budget.
#[derive(Debug, Clone)]
pub struct HeapBudget {
    inner: Arc<HeapInner>,
}

#[derive(Debug)]
struct HeapInner {
    capacity: u64,
    live: AtomicU64,
    peak: AtomicU64,
    allocations: AtomicU64,
}

impl HeapBudget {
    /// Creates a heap of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            inner: Arc::new(HeapInner {
                capacity,
                live: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                allocations: AtomicU64::new(0),
            }),
        }
    }

    /// Reserves `bytes`; fails with [`OutOfMemory`] when the heap would
    /// overflow — the "job dies" behaviour, not a spill.
    pub fn allocate(&self, bytes: u64) -> Result<HeapAllocation, OutOfMemory> {
        let mut current = self.inner.live.load(Ordering::Relaxed);
        loop {
            let next = current + bytes;
            if next > self.inner.capacity {
                return Err(OutOfMemory {
                    requested: bytes,
                    live: current,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.live.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                    return Ok(HeapAllocation {
                        heap: self.clone(),
                        bytes,
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Live bytes.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Occupancy in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        if self.inner.capacity == 0 {
            1.0
        } else {
            self.live() as f64 / self.inner.capacity as f64
        }
    }

    /// Estimated GC overhead factor ≥ 1.0 given current pressure: the model
    /// used by both the paper's narrative and our simulator — GC cost grows
    /// superlinearly as the heap fills with objects ("large sized JVMs ...
    /// can suffer from the overhead of garbage collection", §VIII).
    pub fn gc_overhead(&self) -> f64 {
        gc_overhead_at(self.pressure())
    }
}

/// GC overhead model: 1.0 at an empty heap, rising convexly; ~1.08 at 50 %
/// occupancy, ~1.35 at 85 %, unbounded growth near 100 %.
pub fn gc_overhead_at(pressure: f64) -> f64 {
    let p = pressure.clamp(0.0, 0.99);
    1.0 + 0.3 * p * p / (1.0 - p)
}

/// An RAII heap reservation; releases on drop.
#[derive(Debug)]
pub struct HeapAllocation {
    heap: HeapBudget,
    bytes: u64,
}

impl HeapAllocation {
    /// Reserved size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for HeapAllocation {
    fn drop(&mut self) {
        self.heap.inner.live.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

/// Flink-like managed memory: a fixed pool of equal segments. Acquisition
/// never blocks and never fails — it either grants a segment or tells the
/// caller to spill.
#[derive(Debug, Clone)]
pub struct ManagedPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    segment_bytes: usize,
    total_segments: usize,
    free: AtomicUsize,
    spill_signals: AtomicU64,
}

/// Result of a segment request.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquire {
    /// A segment was granted.
    Granted(Segment),
    /// Pool exhausted: the operator must spill and retry.
    MustSpill,
}

/// An RAII managed segment; returns to the pool on drop.
#[derive(Debug)]
pub struct Segment {
    pool: ManagedPool,
    bytes: usize,
}

impl Segment {
    /// Segment size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl PartialEq for Segment {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}
impl Eq for Segment {}

impl Drop for Segment {
    fn drop(&mut self) {
        self.pool.inner.free.fetch_add(1, Ordering::AcqRel);
    }
}

impl ManagedPool {
    /// Creates a pool of `total_segments` segments of `segment_bytes` each
    /// (Flink's default segment is 32 KiB).
    pub fn new(total_segments: usize, segment_bytes: usize) -> Self {
        assert!(total_segments > 0 && segment_bytes > 0);
        Self {
            inner: Arc::new(PoolInner {
                segment_bytes,
                total_segments,
                free: AtomicUsize::new(total_segments),
                spill_signals: AtomicU64::new(0),
            }),
        }
    }

    /// Sizes a pool from a memory budget.
    pub fn with_budget(budget_bytes: u64, segment_bytes: usize) -> Self {
        let segments = ((budget_bytes as usize) / segment_bytes).max(1);
        Self::new(segments, segment_bytes)
    }

    /// Requests one segment.
    pub fn acquire(&self) -> Acquire {
        let mut free = self.inner.free.load(Ordering::Relaxed);
        loop {
            if free == 0 {
                self.inner.spill_signals.fetch_add(1, Ordering::Relaxed);
                return Acquire::MustSpill;
            }
            match self.inner.free.compare_exchange_weak(
                free,
                free - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Acquire::Granted(Segment {
                        pool: self.clone(),
                        bytes: self.inner.segment_bytes,
                    })
                }
                Err(actual) => free = actual,
            }
        }
    }

    /// Free segments right now.
    pub fn free_segments(&self) -> usize {
        self.inner.free.load(Ordering::Relaxed)
    }

    /// Total segments.
    pub fn total_segments(&self) -> usize {
        self.inner.total_segments
    }

    /// Number of times acquisition told a caller to spill.
    pub fn spill_signals(&self) -> u64 {
        self.inner.spill_signals.load(Ordering::Relaxed)
    }

    /// Segment size in bytes.
    pub fn segment_bytes(&self) -> usize {
        self.inner.segment_bytes
    }
}

/// Error returned by [`BufferPool::try_take`] when the pool's outstanding
/// budget is spent: the caller must free storage (merge or spill its runs)
/// before drawing more — the spill-don't-die discipline of [`ManagedPool`]
/// applied to real allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Buffers currently checked out.
    pub outstanding: usize,
    /// Maximum buffers that may be checked out at once.
    pub limit: usize,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "buffer pool exhausted: {}/{} buffers outstanding",
            self.outstanding, self.limit
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// A pool of reusable `Vec` allocations for the shuffle/combine hot path.
///
/// [`crate::sortbuf::SortCombineBuffer`] emits one freshly-allocated run
/// per buffer fill; a worker draining millions of records through small
/// buffers churns through thousands of short-lived allocations. A
/// `BufferPool` is the managed-memory answer (same spirit as
/// [`ManagedPool`], but for real allocations): spent run storage is
/// returned, cleared, and handed to the next drain instead of going back
/// to the allocator. Bounded so a burst cannot pin memory forever.
///
/// A pool built with [`BufferPool::with_limit`] additionally caps how many
/// buffers may be *outstanding* (taken, not yet returned) at once;
/// [`BufferPool::try_take`] then reports [`PoolExhausted`] instead of
/// allocating past the cap.
#[derive(Debug)]
pub struct BufferPool<T> {
    buffers: Mutex<Vec<Vec<T>>>,
    max_pooled: usize,
    max_outstanding: usize,
    outstanding: AtomicUsize,
    reuses: AtomicU64,
    allocations: AtomicU64,
}

impl<T> BufferPool<T> {
    /// Creates a pool retaining at most `max_pooled` idle buffers, with no
    /// bound on outstanding buffers.
    pub fn new(max_pooled: usize) -> Self {
        Self::with_limit(max_pooled, usize::MAX)
    }

    /// Creates a pool that retains at most `max_pooled` idle buffers and
    /// allows at most `max_outstanding` checked-out buffers at once.
    pub fn with_limit(max_pooled: usize, max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0, "need at least one outstanding buffer");
        Self {
            buffers: Mutex::new(Vec::new()),
            max_pooled,
            max_outstanding,
            outstanding: AtomicUsize::new(0),
            reuses: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        }
    }

    /// Hands out an empty buffer with at least `capacity` reserved,
    /// recycling a pooled allocation when one is available. Ignores the
    /// outstanding cap — use [`BufferPool::try_take`] to respect it.
    pub fn take(&self, capacity: usize) -> Vec<T> {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.take_inner(capacity)
    }

    /// Like [`BufferPool::take`], but fails with [`PoolExhausted`] when the
    /// outstanding cap is reached instead of allocating past it.
    pub fn try_take(&self, capacity: usize) -> Result<Vec<T>, PoolExhausted> {
        let mut cur = self.outstanding.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_outstanding {
                return Err(PoolExhausted {
                    outstanding: cur,
                    limit: self.max_outstanding,
                });
            }
            match self.outstanding.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(self.take_inner(capacity)),
                Err(actual) => cur = actual,
            }
        }
    }

    fn take_inner(&self, capacity: usize) -> Vec<T> {
        if let Some(mut buf) = self.buffers.lock().pop() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            if buf.capacity() < capacity {
                buf.reserve(capacity - buf.len());
            }
            return buf;
        }
        self.allocations.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(capacity)
    }

    /// Returns a spent buffer to the pool (cleared, allocation retained);
    /// dropped instead when the pool is full. Releases one outstanding
    /// slot either way.
    pub fn put(&self, mut buf: Vec<T>) {
        let _ = self
            .outstanding
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        buf.clear();
        if buf.capacity() == 0 {
            return; // nothing worth keeping
        }
        let mut pool = self.buffers.lock();
        if pool.len() < self.max_pooled {
            pool.push(buf);
        }
    }

    /// Buffers currently checked out (taken and not yet returned).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.buffers.lock().len()
    }

    /// Times `take` was served from the pool.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Times `take` had to allocate fresh storage.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_allocation_and_release() {
        let heap = HeapBudget::new(1000);
        let a = heap.allocate(400).unwrap();
        assert_eq!(heap.live(), 400);
        let b = heap.allocate(600).unwrap();
        assert_eq!(heap.live(), 1000);
        drop(a);
        assert_eq!(heap.live(), 600);
        drop(b);
        assert_eq!(heap.live(), 0);
        assert_eq!(heap.peak(), 1000);
    }

    #[test]
    fn heap_overflow_is_fatal_error() {
        let heap = HeapBudget::new(1000);
        let _keep = heap.allocate(800).unwrap();
        let err = heap.allocate(300).unwrap_err();
        assert_eq!(err.requested, 300);
        assert_eq!(err.live, 800);
        assert!(err.to_string().contains("OutOfMemoryError"));
        // The failed allocation must not leak accounting.
        assert_eq!(heap.live(), 800);
    }

    #[test]
    fn gc_overhead_grows_convexly() {
        assert!((gc_overhead_at(0.0) - 1.0).abs() < 1e-12);
        let mid = gc_overhead_at(0.5);
        let high = gc_overhead_at(0.85);
        let extreme = gc_overhead_at(0.98);
        assert!(mid > 1.0 && mid < 1.2);
        assert!(high > mid);
        assert!(extreme > 2.0);
        // Clamp keeps it finite at 1.0.
        assert!(gc_overhead_at(1.0).is_finite());
    }

    #[test]
    fn heap_concurrent_allocation_respects_capacity() {
        let heap = HeapBudget::new(10_000);
        let held: Vec<Vec<HeapAllocation>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let heap = heap.clone();
                    s.spawn(move || {
                        // Hold allocations for the thread's whole life so the
                        // capacity bound is actually contended.
                        (0..10).filter_map(|_| heap.allocate(250).ok()).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let successes: usize = held.iter().map(Vec::len).sum();
        // At most capacity/250 = 40 allocations can be live at once, and the
        // peak must never exceed capacity.
        assert!(successes <= 40, "oversubscribed: {successes}");
        assert!(heap.peak() <= 10_000, "peak {} > capacity", heap.peak());
        drop(held);
        assert_eq!(heap.live(), 0, "all allocations released");
    }

    #[test]
    fn pool_exhaustion_signals_spill_not_failure() {
        let pool = ManagedPool::new(2, 1024);
        let s1 = match pool.acquire() {
            Acquire::Granted(s) => s,
            Acquire::MustSpill => panic!("pool should have segments"),
        };
        let _s2 = match pool.acquire() {
            Acquire::Granted(s) => s,
            Acquire::MustSpill => panic!(),
        };
        assert_eq!(pool.free_segments(), 0);
        assert_eq!(pool.acquire(), Acquire::MustSpill);
        assert_eq!(pool.spill_signals(), 1);
        drop(s1);
        assert!(matches!(pool.acquire(), Acquire::Granted(_)));
    }

    #[test]
    fn pool_with_budget_sizing() {
        let pool = ManagedPool::with_budget(1 << 20, 32 << 10);
        assert_eq!(pool.total_segments(), 32);
        assert_eq!(pool.segment_bytes(), 32 << 10);
    }

    #[test]
    fn buffer_pool_recycles_allocations() {
        let pool: BufferPool<u64> = BufferPool::new(2);
        let mut a = pool.take(64);
        assert_eq!(pool.allocations(), 1);
        a.extend(0..10);
        let ptr = a.as_ptr();
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.take(8);
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.as_ptr(), ptr, "allocation was not recycled");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn buffer_pool_is_bounded() {
        let pool: BufferPool<u8> = BufferPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8)); // over the bound — dropped
        assert_eq!(pool.pooled(), 1);
        pool.put(Vec::new()); // capacity 0 — not worth keeping
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn buffer_pool_take_grows_small_recycled_buffers() {
        let pool: BufferPool<u8> = BufferPool::new(4);
        pool.put(Vec::with_capacity(4));
        let b = pool.take(1024);
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn buffer_pool_try_take_reports_exhaustion() {
        let pool: BufferPool<u64> = BufferPool::with_limit(4, 2);
        let a = pool.try_take(8).unwrap();
        let b = pool.try_take(8).unwrap();
        assert_eq!(pool.outstanding(), 2);
        let err = pool.try_take(8).unwrap_err();
        assert_eq!(err, PoolExhausted { outstanding: 2, limit: 2 });
        assert!(err.to_string().contains("exhausted"));
        // Returning a buffer frees a slot.
        pool.put(a);
        assert_eq!(pool.outstanding(), 1);
        assert!(pool.try_take(8).is_ok());
        pool.put(b);
    }

    #[test]
    fn buffer_pool_unbounded_take_never_exhausts() {
        let pool: BufferPool<u8> = BufferPool::new(2);
        let held: Vec<Vec<u8>> = (0..100).map(|_| pool.take(4)).collect();
        assert_eq!(pool.outstanding(), 100);
        assert!(pool.try_take(4).is_ok(), "default pool has no cap");
        for buf in held {
            pool.put(buf);
        }
    }

    #[test]
    fn zero_capacity_heap_has_full_pressure() {
        let heap = HeapBudget::new(0);
        assert_eq!(heap.pressure(), 1.0);
        assert!(heap.allocate(1).is_err());
        assert!(heap.allocate(0).is_ok());
    }
}
