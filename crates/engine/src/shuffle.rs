//! Shuffle: repartitioning key-value data across workers.
//!
//! Both engines shuffle, but differently (§IV-B): the staged engine writes
//! complete, optionally consolidated map-output files before any reducer
//! starts (a barrier); the pipelined engine streams buffers to reducers
//! while mappers still run. This module implements the data-plane pieces
//! shared by both: partitioning map output, optional map-side combining via
//! [`crate::sortbuf::SortCombineBuffer`], and the blocking exchange used by
//! the staged engine. The pipelined exchange (bounded channels as network
//! buffers) lives in `flink::exec`.

use std::hash::Hash;
use std::sync::Arc;

use flowmark_columnar::{Checksummable, CorruptionKind};
use flowmark_dataflow::partitioner::Partitioner;

use crate::hash::sized_buckets;
use crate::memory::BufferPool;
use crate::metrics::EngineMetrics;
use crate::sortbuf::{CombineFn, SortCombineBuffer};

/// Output of one map task: one bucket of records per reduce partition.
pub type MapOutput<K, V> = Vec<Vec<(K, V)>>;

/// Anything the batch-granularity shuffle can account for: a unit that
/// crosses the exchange whole, carrying `rows()` records in `bytes()`
/// payload bytes. Implemented for plain record vectors (the record
/// adapter) and for columnar key/value batches, so the same exchange and
/// metrics code serves both data planes.
pub trait ShuffleBatch {
    /// Records carried by this batch.
    fn rows(&self) -> usize;
    /// Payload bytes carried by this batch (for shuffle byte accounting).
    fn bytes(&self) -> usize;
}

impl<T> ShuffleBatch for Vec<T> {
    fn rows(&self) -> usize {
        self.len()
    }
    fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl ShuffleBatch for flowmark_columnar::StrU64Batch {
    fn rows(&self) -> usize {
        self.len()
    }
    fn bytes(&self) -> usize {
        self.key_bytes() + self.len() * std::mem::size_of::<u64>()
    }
}

/// A shuffle unit plus the digest taken at write time. The pair crosses
/// the exchange (or the pipelined channels) as one element, so the read
/// side can recompute the digest before any reducer touches the rows.
pub type Sealed<B> = (u64, B);

/// Checksums `batch` at shuffle-write time and pairs it with its digest.
/// Always on — the fault-free path pays the same verification cost a chaos
/// run does, which is what the bench budget in the integrity drill holds
/// to ≤ 5%.
pub fn seal<B: Checksummable>(batch: B, seed: u64, metrics: &EngineMetrics) -> Sealed<B> {
    metrics.add_batches_checksummed(1);
    (batch.checksum(seed), batch)
}

/// Seals a whole source collection in parallel, preserving batch order.
/// Digesting is the cost of admission to the verified path, so the
/// driver-side seal of a large source spreads across cores instead of
/// serialising in front of the job.
pub fn seal_all<B>(batches: Vec<B>, seed: u64, metrics: &EngineMetrics) -> Vec<Sealed<B>>
where
    B: Checksummable + Send,
{
    use rayon::prelude::*;
    batches
        .into_par_iter()
        .map(|b| seal(b, seed, metrics))
        .into_inner_vec()
}

/// Recomputes a sealed batch's digest at read time; `false` means the
/// bytes no longer match what the writer hashed and the batch must be
/// discarded unread (corrupted variable-width columns are not safe to
/// row-access — see `flowmark_columnar::checksum`).
pub fn verify<B: Checksummable>(sealed: &Sealed<B>, seed: u64) -> bool {
    sealed.1.checksum(seed) == sealed.0
}

/// Verifies a sealed batch read from a (simulated) durable source inside a
/// task body and hands back the batch. Under an armed
/// [`FaultPlan::source_rot_decision`](crate::faults::FaultPlan::source_rot_decision)
/// the recomputed digest is perturbed — modelling at-rest rot on data the
/// driver sealed once and shares by `Arc` (a retry re-reads clean bytes,
/// as a re-fetch from durable storage would) — and the mismatch unwinds as
/// a typed [`IntegrityError`](crate::faults::IntegrityError) for the
/// engine's recovery wrapper ([`crate::faults::run_recoverable`]) to
/// answer with a lineage recompute or region restart.
pub fn read_verified<'a, B: Checksummable>(
    sealed: &'a Sealed<B>,
    seed: u64,
    plan: &crate::faults::FaultPlan,
    metrics: &EngineMetrics,
) -> &'a B {
    let mut digest = sealed.1.checksum(seed);
    if plan.source_rot_decision() {
        // The read observed different bytes than were sealed.
        digest ^= 1;
    }
    if digest != sealed.0 {
        metrics.add_corruptions_detected(1);
        std::panic::panic_any(crate::faults::IntegrityError {
            at: (0, 0, 0),
            detail: "sealed source batch failed checksum at read",
        });
    }
    &sealed.1
}

/// Damages one sealed batch in a map task's routed output *after* its
/// digest was taken, leaving the digest stale — the transit-corruption
/// injection point for the integrity drill. The salt picks the victim
/// among every shipped batch; returns what was actually damaged (`None`
/// when nothing is corruptible, e.g. every batch is empty).
pub fn corrupt_one<B: Checksummable>(
    out: &mut [Vec<Sealed<B>>],
    kind: CorruptionKind,
    salt: u64,
) -> Option<CorruptionKind> {
    let total: usize = out.iter().map(Vec::len).sum();
    if total == 0 {
        return None;
    }
    let mut i = (salt as usize) % total;
    for bucket in out.iter_mut() {
        if i < bucket.len() {
            return bucket[i].1.corrupt(kind, salt.rotate_right(13));
        }
        i -= bucket.len();
    }
    None
}

/// Unwraps a computed partition for the shuffle without copying when this
/// task is the only holder — the common case for non-persisted lineage.
/// Only a cached (shared) partition pays for a clone.
pub fn take_partition<T: Clone>(partition: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(partition).unwrap_or_else(|shared| (*shared).clone())
}

/// Partitions one map task's records into per-reducer buckets, each
/// pre-sized to the expected fan-out (`count / n + 1`).
pub fn partition_records<K, V, P>(
    records: Vec<(K, V)>,
    partitioner: &P,
    metrics: &EngineMetrics,
    bytes_per_record: usize,
) -> MapOutput<K, V>
where
    K: Hash,
    P: Partitioner<K> + ?Sized,
{
    let n = partitioner.partitions();
    let count = records.len();
    let mut buckets: MapOutput<K, V> = sized_buckets(n, count);
    for (k, v) in records {
        let p = partitioner.partition(&k);
        buckets[p].push((k, v));
    }
    metrics.add_records_shuffled(count as u64);
    metrics.add_bytes_shuffled((count * bytes_per_record) as u64);
    buckets
}

/// Partitions with a map-side sort-based combine per bucket: the records of
/// each bucket are collapsed before they would cross the network. Returns
/// buckets in sorted-by-key order (a property the sort-based shuffle gives
/// for free and TeraSort relies on). All buckets draw run storage from one
/// shared [`BufferPool`], so run allocations are recycled across the whole
/// map task.
pub fn partition_combine<K, V, P>(
    records: Vec<(K, V)>,
    partitioner: &P,
    combine: CombineFn<V>,
    buffer_capacity: usize,
    spill_run_budget: usize,
    metrics: &EngineMetrics,
    bytes_per_record: usize,
) -> MapOutput<K, V>
where
    K: Hash + Ord + Clone,
    P: Partitioner<K> + ?Sized,
{
    let n = partitioner.partitions();
    // Bounded outstanding-run budget: a skewed bucket that piles up more
    // than `spill_run_budget` runs per channel gets an early merge
    // (PoolExhausted → compact) instead of unbounded run storage.
    let pool = Arc::new(BufferPool::with_limit(2 * n, spill_run_budget * n));
    let mut buffers: Vec<SortCombineBuffer<K, V>> = (0..n)
        .map(|_| {
            SortCombineBuffer::with_pool(
                buffer_capacity,
                bytes_per_record,
                Arc::clone(&combine),
                metrics.clone(),
                Arc::clone(&pool),
            )
        })
        .collect();
    for (k, v) in records {
        let p = partitioner.partition(&k);
        buffers[p].insert(k, v);
    }
    let buckets: MapOutput<K, V> = buffers.into_iter().map(|b| b.finish()).collect();
    let out_records: usize = buckets.iter().map(Vec::len).sum();
    metrics.add_records_shuffled(out_records as u64);
    metrics.add_bytes_shuffled((out_records * bytes_per_record) as u64);
    buckets
}

/// The staged (barrier) exchange: gathers every map task's buckets, then
/// regroups them by reduce partition. Nothing is handed to reducers until
/// *all* map outputs exist — the stage boundary in Fig 9 (right). The first
/// map task's bucket seeds each reduce input (moved, not copied) and the
/// rest are appended into storage reserved up front.
///
/// Element-generic: `E` is whatever a map task emits per reducer — a
/// `(K, V)` pair on the record path, or a whole column batch on the
/// batch-granularity path (where one "element" moves thousands of rows).
pub fn exchange<E>(map_outputs: Vec<Vec<Vec<E>>>) -> Vec<Vec<E>> {
    let partitions = map_outputs.first().map(Vec::len).unwrap_or(0);
    debug_assert!(
        map_outputs.iter().all(|m| m.len() == partitions),
        "all map tasks must produce the same partition count"
    );
    let mut totals = vec![0usize; partitions];
    for output in &map_outputs {
        for (p, bucket) in output.iter().enumerate() {
            totals[p] += bucket.len();
        }
    }
    let mut reduce_inputs: Vec<Vec<E>> = Vec::with_capacity(partitions);
    let mut tail = map_outputs.into_iter();
    match tail.next() {
        Some(first) => {
            for (p, mut bucket) in first.into_iter().enumerate() {
                bucket.reserve(totals[p] - bucket.len());
                reduce_inputs.push(bucket);
            }
        }
        None => return reduce_inputs,
    }
    for output in tail {
        for (p, mut bucket) in output.into_iter().enumerate() {
            reduce_inputs[p].append(&mut bucket);
        }
    }
    reduce_inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_dataflow::partitioner::HashPartitioner;
    use std::collections::HashMap;

    fn sum() -> CombineFn<u64> {
        Arc::new(|acc: &mut u64, v| *acc += v)
    }

    #[test]
    fn partitioning_is_complete_and_consistent() {
        let metrics = EngineMetrics::new();
        let part = HashPartitioner::new(4);
        let records: Vec<(String, u64)> = (0..100).map(|i| (format!("k{i}"), i)).collect();
        let buckets = partition_records(records, &part, &metrics, 16);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        // Every key landed where the partitioner says.
        for (p, bucket) in buckets.iter().enumerate() {
            for (k, _) in bucket {
                assert_eq!(part.partition(k), p);
            }
        }
        assert_eq!(metrics.records_shuffled(), 100);
        assert_eq!(metrics.bytes_shuffled(), 1600);
    }

    #[test]
    fn combine_reduces_shuffled_records() {
        let metrics = EngineMetrics::new();
        let part = HashPartitioner::new(4);
        // 1000 records over 10 hot keys.
        let records: Vec<(String, u64)> =
            (0..1000).map(|i| (format!("k{}", i % 10), 1)).collect();
        let buckets = partition_combine(records, &part, sum(), 64, 4, &metrics, 16);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert!(total <= 10 * 16, "combine left too many records: {total}");
        // Counts preserved.
        let mut m: HashMap<String, u64> = HashMap::new();
        for (k, v) in buckets.into_iter().flatten() {
            *m.entry(k).or_default() += v;
        }
        assert_eq!(m.len(), 10);
        assert!(m.values().all(|&v| v == 100));
        assert!(metrics.records_shuffled() < 1000);
    }

    #[test]
    fn combined_buckets_are_sorted() {
        let metrics = EngineMetrics::new();
        let part = HashPartitioner::new(2);
        let records: Vec<(String, u64)> =
            (0..500).map(|i| (format!("w{:03}", (i * 17) % 100), 1)).collect();
        let buckets = partition_combine(records, &part, sum(), 32, 4, &metrics, 16);
        for bucket in &buckets {
            assert!(bucket.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn exchange_regroups_by_partition() {
        // Two map tasks, three reduce partitions.
        let m1: MapOutput<u32, u32> = vec![vec![(0, 1)], vec![(1, 1)], vec![]];
        let m2: MapOutput<u32, u32> = vec![vec![(0, 2)], vec![], vec![(2, 2)]];
        let reduced = exchange(vec![m1, m2]);
        assert_eq!(reduced.len(), 3);
        assert_eq!(reduced[0], vec![(0, 1), (0, 2)]);
        assert_eq!(reduced[1], vec![(1, 1)]);
        assert_eq!(reduced[2], vec![(2, 2)]);
    }

    #[test]
    fn exchange_of_nothing_is_empty() {
        let reduced: Vec<Vec<(u32, u32)>> = exchange(Vec::new());
        assert!(reduced.is_empty());
    }

    #[test]
    fn take_partition_is_zero_copy_when_unique() {
        let data = vec![1u32, 2, 3];
        let ptr = data.as_ptr();
        let unique = Arc::new(data);
        let out = take_partition(unique);
        assert_eq!(out.as_ptr(), ptr, "unique Arc must hand back its storage");

        let shared = Arc::new(vec![4u32, 5]);
        let keep = Arc::clone(&shared);
        let cloned = take_partition(shared);
        assert_eq!(cloned, *keep, "shared Arc falls back to a clone");
    }

    #[test]
    fn seal_verify_round_trips_and_counts() {
        let metrics = EngineMetrics::new();
        let sealed = seal(vec![1u64, 2, 3], 7, &metrics);
        assert!(verify(&sealed, 7));
        assert!(!verify(&sealed, 8), "digest must be seed-bound");
        assert_eq!(metrics.recovery().batches_checksummed, 1);
    }

    #[test]
    fn corrupt_one_breaks_exactly_one_digest() {
        let metrics = EngineMetrics::new();
        let mut out: Vec<Vec<Sealed<Vec<u64>>>> = vec![
            vec![seal(vec![1u64, 2], 9, &metrics)],
            vec![seal(vec![3u64], 9, &metrics), seal(vec![4u64, 5], 9, &metrics)],
        ];
        let hit = corrupt_one(&mut out, CorruptionKind::BitFlip, 0xDEAD_BEEF);
        assert!(hit.is_some());
        let bad: usize = out
            .iter()
            .flatten()
            .filter(|s| !verify(s, 9))
            .count();
        assert_eq!(bad, 1, "exactly one batch must fail verification");
    }

    #[test]
    fn corrupt_one_of_nothing_is_none() {
        let mut out: Vec<Vec<Sealed<Vec<u64>>>> = vec![Vec::new(), Vec::new()];
        assert!(corrupt_one(&mut out, CorruptionKind::Truncate, 3).is_none());
    }

    #[test]
    fn partition_buckets_are_presized() {
        let metrics = EngineMetrics::new();
        let part = HashPartitioner::new(4);
        let records: Vec<(u64, u64)> = (0..1000).map(|i| (i, i)).collect();
        let buckets = partition_records(records, &part, &metrics, 16);
        // Each bucket reserved ~count/n up front; a balanced hash shouldn't
        // have pushed any of them far beyond it.
        for b in &buckets {
            assert!(b.capacity() >= 251, "bucket under-reserved: {}", b.capacity());
        }
    }
}
