//! Streaming extension — the paper's stated future work (§VIII: "we plan
//! to extend the evaluation with SQL and streaming benchmarks, and examine
//! in this context whether treating batches as finite sets of streamed
//! data pays off").
//!
//! Two runtimes process the same timestamped event stream:
//!
//! - [`run_micro_batch`] — the discretized-stream model (Spark Streaming,
//!   ref. \[23\] of the paper): events are buffered and processed as a
//!   staged job once per batch interval. Every event's latency includes
//!   the wait for its batch boundary.
//! - [`run_continuous`] — the record-at-a-time model (Flink/Nephele
//!   streaming, ref. \[22\]): events flow through the operator the moment
//!   they arrive.
//!
//! Both report end-to-end latency distributions ([`StreamStats`]), making
//! the paper's open question quantitative: micro-batching trades latency
//! (≈ half the batch interval, plus processing) for per-batch
//! amortisation; continuous processing pays per-record overhead but keeps
//! latency at processing time.

use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError};

use flowmark_core::stats::{Accumulator, Summary};

/// A timestamped stream record.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// The payload.
    pub payload: T,
    /// Ingestion time (assigned by the source).
    pub ingest: Instant,
}

/// Result of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Events fully processed.
    pub processed: u64,
    /// End-to-end latency (ingest → output), microseconds.
    pub latency_us: Summary,
    /// Number of processing invocations (batches, or records for the
    /// continuous runtime).
    pub invocations: u64,
}

/// Drives `n_events` synthetic events at the given inter-arrival gap
/// through a processing function, in micro-batches of `batch_interval`.
///
/// `process` receives each batch like a staged job receives a partition;
/// latency for every event in the batch is measured at batch completion.
pub fn run_micro_batch<T, U>(
    events: Vec<T>,
    inter_arrival: Duration,
    batch_interval: Duration,
    process: impl Fn(&[T]) -> Vec<U> + Send + Sync,
) -> StreamStats
where
    T: Clone + Send + Sync + 'static,
{
    let (tx, rx) = bounded::<Event<T>>(events.len().max(1));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for payload in events {
                let _ = tx.send(Event {
                    payload,
                    ingest: Instant::now(),
                });
                std::thread::sleep(inter_arrival);
            }
        });
        let mut latency = Accumulator::new();
        let mut processed = 0u64;
        let mut invocations = 0u64;
        let mut batch: Vec<Event<T>> = Vec::new();
        let mut deadline = Instant::now() + batch_interval;
        let mut source_done = false;
        loop {
            if !source_done {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(remaining) {
                    Ok(ev) => batch.push(ev),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => source_done = true,
                }
            }
            if Instant::now() >= deadline || source_done {
                if !batch.is_empty() {
                    // The batch runs as one staged job; every event's
                    // latency is measured at job completion.
                    let payloads: Vec<T> = batch.iter().map(|e| e.payload.clone()).collect();
                    let _ = process(&payloads);
                    let done = Instant::now();
                    for ev in batch.drain(..) {
                        latency.push(done.duration_since(ev.ingest).as_micros() as f64);
                        processed += 1;
                    }
                    invocations += 1;
                }
                deadline = Instant::now() + batch_interval;
            }
            if source_done && batch.is_empty() {
                break;
            }
        }
        StreamStats {
            processed,
            latency_us: latency.summary(),
            invocations,
        }
    })
}

/// Processes each event the moment it arrives (record-at-a-time).
pub fn run_continuous<T, U>(
    events: Vec<T>,
    inter_arrival: Duration,
    process: impl Fn(&T) -> U + Send + Sync,
) -> StreamStats
where
    T: Send + Sync + 'static,
{
    let (tx, rx) = bounded::<Event<T>>(1024);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for payload in events {
                let _ = tx.send(Event {
                    payload,
                    ingest: Instant::now(),
                });
                std::thread::sleep(inter_arrival);
            }
        });
        let mut latency = Accumulator::new();
        let mut processed = 0u64;
        for ev in rx.iter() {
            let _ = process(&ev.payload);
            latency.push(ev.ingest.elapsed().as_micros() as f64);
            processed += 1;
        }
        StreamStats {
            processed,
            latency_us: latency.summary(),
            invocations: processed,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_runtimes_process_every_event() {
        let events: Vec<u64> = (0..200).collect();
        let mb = run_micro_batch(
            events.clone(),
            Duration::from_micros(100),
            Duration::from_millis(10),
            |batch| batch.iter().map(|x| x * 2).collect::<Vec<_>>(),
        );
        assert_eq!(mb.processed, 200);
        assert!(mb.invocations >= 1);
        let ct = run_continuous(events, Duration::from_micros(100), |x| x * 2);
        assert_eq!(ct.processed, 200);
        assert_eq!(ct.invocations, 200);
    }

    #[test]
    fn micro_batching_amortises_invocations() {
        let events: Vec<u64> = (0..300).collect();
        let mb = run_micro_batch(
            events,
            Duration::from_micros(50),
            Duration::from_millis(20),
            |batch| vec![batch.len()],
        );
        // 300 events over ~15 ms fit in very few 20 ms batches.
        assert!(
            mb.invocations < 20,
            "expected few batches, got {}",
            mb.invocations
        );
    }

    #[test]
    fn continuous_latency_beats_micro_batch() {
        // The future-work question, §VIII: does treating batches as finite
        // streams pay off? For latency it must: events wait for the batch
        // boundary in the discretized model.
        let events: Vec<u64> = (0..400).collect();
        let mb = run_micro_batch(
            events.clone(),
            Duration::from_micros(200),
            Duration::from_millis(40),
            |batch| batch.iter().map(|x| x + 1).collect::<Vec<_>>(),
        );
        let ct = run_continuous(events, Duration::from_micros(200), |x| x + 1);
        assert_eq!(mb.processed, ct.processed);
        assert!(
            ct.latency_us.mean * 3.0 < mb.latency_us.mean,
            "continuous {}µs vs micro-batch {}µs",
            ct.latency_us.mean,
            mb.latency_us.mean
        );
        // Micro-batch mean latency is on the order of the batch interval.
        assert!(mb.latency_us.mean > 5_000.0, "{}", mb.latency_us.mean);
    }
}
