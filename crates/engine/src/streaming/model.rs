//! Closed-form latency model: micro-batch vs record-at-a-time.
//!
//! The seed repo measured this race with wall-clock `Instant`s and
//! thread sleeps, which made the tier-1 assertion
//! (`continuous mean × 3 < micro-batch mean`) flake under load. The
//! model is analytic and runs on the logical clock instead: event `i`
//! arrives at tick `i × gap`; the discretized runtime releases it at the
//! next batch boundary, the continuous runtime after one processing
//! tick. Same conclusion as the paper's §VIII discussion — micro-batch
//! latency is ≈ half the batch interval, continuous latency is the
//! processing time — with zero scheduler noise.

use flowmark_core::stats::Summary;

/// Result of a streaming latency-model run.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Events fully processed.
    pub processed: u64,
    /// End-to-end latency (arrival → emission) in logical ticks.
    pub latency_ticks: Summary,
    /// Processing invocations (batches, or records for the continuous
    /// runtime).
    pub invocations: u64,
}

/// Per-event latencies of the discretized (micro-batch) runtime, in
/// ticks. Event `i` arrives at `i × arrival_gap` and is released at the
/// first batch boundary strictly after its arrival.
pub fn micro_batch_latency_ticks(n_events: u64, arrival_gap: u64, batch_ticks: u64) -> Vec<u64> {
    let gap = arrival_gap.max(1);
    let batch = batch_ticks.max(1);
    (0..n_events)
        .map(|i| {
            let arrival = i * gap;
            let release = (arrival / batch + 1) * batch;
            release - arrival
        })
        .collect()
}

/// Drives `events` through `process` in micro-batches of `batch_ticks`
/// logical ticks, with one event arriving every `arrival_gap` ticks.
///
/// `process` receives each batch like a staged job receives a partition;
/// latency for every event in the batch is measured at the batch
/// boundary that releases it.
pub fn run_micro_batch<T, U>(
    events: Vec<T>,
    arrival_gap: u64,
    batch_ticks: u64,
    process: impl Fn(&[T]) -> Vec<U>,
) -> StreamStats {
    let gap = arrival_gap.max(1);
    let batch = batch_ticks.max(1);
    let latencies = micro_batch_latency_ticks(events.len() as u64, gap, batch);
    let mut invocations = 0u64;
    let mut start = 0usize;
    while start < events.len() {
        // All events released at the same boundary form one batch.
        let boundary = (start as u64 * gap) / batch;
        let mut end = start;
        while end < events.len() && (end as u64 * gap) / batch == boundary {
            end += 1;
        }
        let _ = process(&events[start..end]);
        invocations += 1;
        start = end;
    }
    StreamStats {
        processed: events.len() as u64,
        latency_ticks: Summary::of(&latencies.iter().map(|&l| l as f64).collect::<Vec<_>>()),
        invocations,
    }
}

/// Processes each event the moment it arrives (record-at-a-time): one
/// invocation per record, one processing tick of latency.
pub fn run_continuous<T, U>(events: Vec<T>, _arrival_gap: u64, process: impl Fn(&T) -> U) -> StreamStats {
    let mut processed = 0u64;
    for ev in &events {
        let _ = process(ev);
        processed += 1;
    }
    StreamStats {
        processed,
        latency_ticks: Summary::of(&vec![1.0; events.len()]),
        invocations: processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_runtimes_process_every_event() {
        let events: Vec<u64> = (0..200).collect();
        let mb = run_micro_batch(events.clone(), 2, 100, |batch| {
            batch.iter().map(|x| x * 2).collect::<Vec<_>>()
        });
        assert_eq!(mb.processed, 200);
        assert!(mb.invocations >= 1);
        let ct = run_continuous(events, 2, |x| x * 2);
        assert_eq!(ct.processed, 200);
        assert_eq!(ct.invocations, 200);
    }

    #[test]
    fn micro_batching_amortises_invocations() {
        // 300 events arriving every tick fit in few 100-tick batches.
        let events: Vec<u64> = (0..300).collect();
        let mb = run_micro_batch(events, 1, 100, |batch| vec![batch.len()]);
        assert_eq!(mb.invocations, 3);
    }

    #[test]
    fn continuous_latency_beats_micro_batch() {
        // The future-work question, §VIII: does treating batches as finite
        // streams pay off? For latency it must: events wait for the batch
        // boundary in the discretized model. On the logical clock the
        // comparison is exact, not a wall-clock race.
        let events: Vec<u64> = (0..400).collect();
        let mb = run_micro_batch(events.clone(), 2, 40, |batch| {
            batch.iter().map(|x| x + 1).collect::<Vec<_>>()
        });
        let ct = run_continuous(events, 2, |x| x + 1);
        assert_eq!(mb.processed, ct.processed);
        assert!(
            ct.latency_ticks.mean * 3.0 < mb.latency_ticks.mean,
            "continuous {} ticks vs micro-batch {} ticks",
            ct.latency_ticks.mean,
            mb.latency_ticks.mean
        );
        // Micro-batch mean latency is on the order of half the batch
        // interval: arrivals every 2 ticks spread uniformly over 40-tick
        // batches → mean wait 2 + (40 − 2) / 2 = 21 ticks.
        assert!((mb.latency_ticks.mean - 21.0).abs() < 1e-9, "{}", mb.latency_ticks.mean);
        assert_eq!(mb.latency_ticks.min, 2.0);
        assert_eq!(mb.latency_ticks.max, 40.0);
    }

    #[test]
    fn latency_model_is_deterministic() {
        let a = micro_batch_latency_ticks(1000, 3, 64);
        let b = micro_batch_latency_ticks(1000, 3, 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| l >= 1 && l <= 64));
    }
}
