//! Event-time windows: assignment, merging, and snapshottable state.
//!
//! A [`WindowAssigner`] maps an event time to one or more `[start, end)`
//! windows. [`WindowedAggregate`] folds keyed `(key, value)` events into
//! per-window accumulators, emits [`WindowResult`]s when the watermark
//! passes a window's end, and exposes its state as a flat word vector so
//! the runtime can seal it into a checkpoint digest ([`StreamOperator`]).
//!
//! Session windows merge: every event opens a proto-window
//! `[t, t + gap)`, and any existing window of the same key that overlaps
//! or touches it is absorbed (start = min, end = max, accumulators
//! merged). Two events belong to one session iff a chain of ≤`gap`
//! steps connects them — exactly the Flink semantics the paper's §VIII
//! points at.

use std::collections::BTreeMap;

use flowmark_columnar::checksum::Xxh64;
use flowmark_columnar::kernels;

use crate::hash::{fx_map_with_capacity, FxHashMap};

use super::StreamEvent;

/// How event times map to windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Fixed, non-overlapping windows of `size` ticks.
    Tumbling {
        /// Window length in ticks (must be > 0).
        size: u64,
    },
    /// Overlapping windows of `size` ticks, one starting every `slide`
    /// ticks.
    Sliding {
        /// Window length in ticks (must be > 0).
        size: u64,
        /// Tick distance between consecutive window starts (must be > 0
        /// and ≤ `size`).
        slide: u64,
    },
    /// Per-key activity sessions closed by `gap` ticks of silence.
    Session {
        /// Inactivity gap in ticks (must be > 0).
        gap: u64,
    },
}

impl WindowAssigner {
    /// The `[start, end)` windows containing event time `t`. Session
    /// windows return the proto-window `[t, t + gap)`; merging happens in
    /// the operator.
    pub fn assign(&self, t: u64) -> Vec<(u64, u64)> {
        if let WindowAssigner::Session { gap } = *self {
            return vec![(t, t + gap.max(1))];
        }
        let mut v = Vec::with_capacity(1);
        self.for_each_window(t, |s, e| v.push((s, e)));
        v
    }

    /// Calls `f(start, end)` for every non-merging window containing `t`,
    /// without allocating the `Vec` that [`WindowAssigner::assign`]
    /// returns — the batch fold's per-event hot path.
    ///
    /// # Panics
    /// Panics for session assigners: merged windows have no static
    /// assignment (callers check [`WindowAssigner::merging`] first).
    pub fn for_each_window(&self, t: u64, mut f: impl FnMut(u64, u64)) {
        match *self {
            WindowAssigner::Tumbling { size } => {
                let size = size.max(1);
                let start = t - t % size;
                f(start, start + size);
            }
            WindowAssigner::Sliding { size, slide } => {
                let size = size.max(1);
                let slide = slide.max(1).min(size);
                // Starts s with s ≤ t < s + size and s ≡ 0 (mod slide).
                let last = t - t % slide;
                let first = (t + 1).saturating_sub(size);
                let first = first.div_ceil(slide) * slide;
                for s in (first..=last).step_by(slide as usize) {
                    f(s, s + size);
                }
            }
            WindowAssigner::Session { .. } => {
                unreachable!("session windows merge; they have no static assignment")
            }
        }
    }

    /// True for merging (session) assigners.
    pub fn merging(&self) -> bool {
        matches!(self, WindowAssigner::Session { .. })
    }
}

/// A keyed window result: the aggregate of every `(key, value)` event
/// assigned to `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowResult {
    /// Grouping key.
    pub key: u64,
    /// Window start tick (inclusive).
    pub start: u64,
    /// Window end tick (exclusive).
    pub end: u64,
    /// Sum of values.
    pub sum: u64,
    /// Number of events.
    pub count: u64,
    /// Maximum value.
    pub max: u64,
}

/// An operator whose state can be snapshotted into a checkpoint barrier
/// and restored after a region restart.
///
/// `write_state` is an associated function (no `&self`) so the recovery
/// path can re-digest a *stored* snapshot and compare it against the
/// sealed digest without an operator instance.
pub trait StreamOperator: Send {
    /// Input payload type.
    type In: Clone + Send + 'static;
    /// Output record type.
    type Out: Clone + Send + 'static;
    /// Snapshottable state.
    type State: Clone + Send + 'static;

    /// Folds one event into operator state, appending any immediate
    /// outputs to `out`.
    fn on_event(&mut self, event: &StreamEvent<Self::In>, out: &mut Vec<Self::Out>);
    /// Folds a transport slab of events batch-at-a-time, appending
    /// immediate outputs in event order. The default loops
    /// [`StreamOperator::on_event`]; overriders must produce state and
    /// outputs identical to that loop for any slab partitioning of the
    /// same event sequence (the runtimes' byte-equality contract).
    fn on_batch(&mut self, events: &[StreamEvent<Self::In>], out: &mut Vec<Self::Out>) {
        for ev in events {
            self.on_event(ev, out);
        }
    }
    /// Advances event time: windows ending at or before `watermark` are
    /// finalised and appended to `out`.
    fn on_watermark(&mut self, watermark: u64, out: &mut Vec<Self::Out>);
    /// Captures a snapshot of the operator state.
    fn state(&self) -> Self::State;
    /// Restores a snapshot captured by [`StreamOperator::state`].
    fn restore(&mut self, state: Self::State);
    /// Feeds a snapshot into a checkpoint digest.
    fn write_state(state: &Self::State, h: &mut Xxh64);
}

/// Per-window accumulator (sum / count / max of the value).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WindowAcc {
    sum: u64,
    count: u64,
    max: u64,
}

impl WindowAcc {
    fn fold(&mut self, v: u64) {
        self.sum = self.sum.wrapping_add(v);
        self.count += 1;
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &WindowAcc) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// An open window: its end tick and running aggregate.
#[derive(Debug, Clone, Copy)]
struct OpenWindow {
    end: u64,
    acc: WindowAcc,
}

/// Keyed windowed aggregation: extracts `(key, value)` pairs from events
/// via a plain function pointer (so state stays `Clone + Send` without
/// boxing), assigns them to windows, and emits [`WindowResult`]s as the
/// watermark passes window ends. Events that don't carry a pair (the
/// extractor returns `None`) pass through unaggregated — e.g. persons
/// and auctions in a bids-only query.
pub struct WindowedAggregate<In> {
    assigner: WindowAssigner,
    extract: fn(&In) -> Option<(u64, u64)>,
    /// Open windows keyed `(key, start)` — BTreeMap so snapshots and
    /// emission order are canonical.
    windows: BTreeMap<(u64, u64), OpenWindow>,
}

impl<In> WindowedAggregate<In> {
    /// Builds an aggregate over `assigner` with the given extractor.
    pub fn new(assigner: WindowAssigner, extract: fn(&In) -> Option<(u64, u64)>) -> Self {
        Self {
            assigner,
            extract,
            windows: BTreeMap::new(),
        }
    }

    /// Number of currently open windows (test / introspection hook).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    fn fold_session(&mut self, key: u64, t: u64, v: u64) {
        let gap = match self.assigner {
            WindowAssigner::Session { gap } => gap.max(1),
            _ => unreachable!("fold_session on non-session assigner"),
        };
        let (mut start, mut end) = (t, t + gap);
        let mut acc = WindowAcc::default();
        acc.fold(v);
        // Absorb every window of this key that overlaps or touches the
        // proto-window. Candidates all live under the (key, _) prefix.
        let hits: Vec<(u64, u64)> = self
            .windows
            .range((key, 0)..=(key, u64::MAX))
            .filter(|(&(_, s), w)| s <= end && w.end >= start)
            .map(|(&k, _)| k)
            .collect();
        for k in hits {
            if let Some(w) = self.windows.remove(&k) {
                start = start.min(k.1);
                end = end.max(w.end);
                acc.merge(&w.acc);
            }
        }
        self.windows.insert((key, start), OpenWindow { end, acc });
    }
}

impl<In: Clone + Send + 'static> StreamOperator for WindowedAggregate<In> {
    type In = In;
    type Out = WindowResult;
    /// Flattened `(key, start, end, sum, count, max)` rows, sorted by
    /// `(key, start)` — canonical, digest-friendly.
    type State = Vec<[u64; 6]>;

    fn on_event(&mut self, event: &StreamEvent<In>, _out: &mut Vec<WindowResult>) {
        let Some((key, value)) = (self.extract)(&event.payload) else {
            return;
        };
        if self.assigner.merging() {
            self.fold_session(key, event.time, value);
        } else {
            for (start, end) in self.assigner.assign(event.time) {
                let w = self
                    .windows
                    .entry((key, start))
                    .or_insert(OpenWindow {
                        end,
                        acc: WindowAcc::default(),
                    });
                debug_assert_eq!(w.end, end, "window ({key},{start}) changed its end");
                w.acc.fold(value);
            }
        }
    }

    /// Batch fold: the slab is flattened into dense slot ids (one slot per
    /// distinct `(key, window)` this slab touches) plus flat value
    /// columns, summed through [`flowmark_columnar::kernels::hash_agg_u64`],
    /// and folded into the open-window tree once per distinct window — the
    /// per-event `assign()` allocation and per-event tree probe both
    /// disappear. Wrapping sum / count / max are order-insensitive, so the
    /// resulting state is identical to the event-at-a-time loop. Merging
    /// (session) assigners keep the default per-event path.
    fn on_batch(&mut self, events: &[StreamEvent<In>], out: &mut Vec<WindowResult>) {
        // Small slabs (frequent watermarks or barriers force flushes well
        // below the configured slab size) don't amortise the dictionary +
        // column allocations below; the per-event fold is cheaper there.
        const MIN_COLUMNAR_SLAB: usize = 32;
        if self.assigner.merging() || events.len() < MIN_COLUMNAR_SLAB {
            for ev in events {
                self.on_event(ev, out);
            }
            return;
        }
        // Pass 1: dictionary-encode (key, start) into dense slot ids.
        let mut dict: FxHashMap<(u64, u64), u64> = fx_map_with_capacity(events.len());
        let mut slot_windows: Vec<(u64, u64, u64)> = Vec::new();
        let mut slots: Vec<u64> = Vec::with_capacity(events.len());
        let mut vals: Vec<u64> = Vec::with_capacity(events.len());
        for ev in events {
            let Some((key, value)) = (self.extract)(&ev.payload) else {
                continue;
            };
            let windows = &mut slot_windows;
            self.assigner.for_each_window(ev.time, |start, end| {
                let slot = *dict.entry((key, start)).or_insert_with(|| {
                    windows.push((key, start, end));
                    windows.len() as u64 - 1
                });
                slots.push(slot);
                vals.push(value);
            });
        }
        if slots.is_empty() {
            return;
        }
        // Pass 2: sum via the shared hash-agg kernel over the flat
        // columns; count and max fold over dense slot-indexed arrays.
        let mut sums: FxHashMap<u64, u64> = fx_map_with_capacity(slot_windows.len());
        kernels::hash_agg_u64(&slots, &vals, None, None, &mut sums, |a, v| {
            *a = a.wrapping_add(v)
        });
        let mut counts = vec![0u64; slot_windows.len()];
        let mut maxs = vec![0u64; slot_windows.len()];
        for (i, &s) in slots.iter().enumerate() {
            counts[s as usize] += 1;
            maxs[s as usize] = maxs[s as usize].max(vals[i]);
        }
        // Pass 3: one tree probe per distinct window touched by the slab.
        for (slot, &(key, start, end)) in slot_windows.iter().enumerate() {
            let w = self.windows.entry((key, start)).or_insert(OpenWindow {
                end,
                acc: WindowAcc::default(),
            });
            debug_assert_eq!(w.end, end, "window ({key},{start}) changed its end");
            w.acc.sum = w.acc.sum.wrapping_add(sums[&(slot as u64)]);
            w.acc.count += counts[slot];
            w.acc.max = w.acc.max.max(maxs[slot]);
        }
    }

    fn on_watermark(&mut self, watermark: u64, out: &mut Vec<WindowResult>) {
        // A window fires when the watermark passes its end. BTreeMap
        // iteration keeps emission order canonical per key.
        let ripe: Vec<(u64, u64)> = self
            .windows
            .iter()
            .filter(|(_, w)| w.end <= watermark)
            .map(|(&k, _)| k)
            .collect();
        for (key, start) in ripe {
            if let Some(w) = self.windows.remove(&(key, start)) {
                out.push(WindowResult {
                    key,
                    start,
                    end: w.end,
                    sum: w.acc.sum,
                    count: w.acc.count,
                    max: w.acc.max,
                });
            }
        }
    }

    fn state(&self) -> Self::State {
        self.windows
            .iter()
            .map(|(&(key, start), w)| [key, start, w.end, w.acc.sum, w.acc.count, w.acc.max])
            .collect()
    }

    fn restore(&mut self, state: Self::State) {
        self.windows = state
            .into_iter()
            .map(|[key, start, end, sum, count, max]| {
                (
                    (key, start),
                    OpenWindow {
                        end,
                        acc: WindowAcc { sum, count, max },
                    },
                )
            })
            .collect();
    }

    fn write_state(state: &Self::State, h: &mut Xxh64) {
        h.write_u64(state.len() as u64);
        for row in state {
            h.write_u64s(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(e: &(u64, u64)) -> Option<(u64, u64)> {
        Some(*e)
    }

    fn feed(op: &mut WindowedAggregate<(u64, u64)>, events: &[(u64, u64, u64)]) {
        let mut out = Vec::new();
        for &(t, k, v) in events {
            op.on_event(&StreamEvent::new(t, (k, v)), &mut out);
        }
        assert!(out.is_empty(), "windowed aggregate has no immediate outputs");
    }

    #[test]
    fn tumbling_assigns_exactly_one_window() {
        let a = WindowAssigner::Tumbling { size: 10 };
        assert_eq!(a.assign(0), vec![(0, 10)]);
        assert_eq!(a.assign(9), vec![(0, 10)]);
        assert_eq!(a.assign(10), vec![(10, 20)]);
    }

    #[test]
    fn sliding_assigns_overlapping_windows() {
        let a = WindowAssigner::Sliding { size: 10, slide: 5 };
        // t = 7 lives in [0,10) and [5,15).
        assert_eq!(a.assign(7), vec![(0, 10), (5, 15)]);
        // t = 3 lives only in [0,10) (window [-5,5) does not exist).
        assert_eq!(a.assign(3), vec![(0, 10)]);
    }

    #[test]
    fn tumbling_aggregate_fires_on_watermark() {
        let mut op = WindowedAggregate::new(WindowAssigner::Tumbling { size: 10 }, kv);
        feed(&mut op, &[(1, 7, 5), (3, 7, 2), (12, 7, 9)]);
        let mut out = Vec::new();
        op.on_watermark(10, &mut out);
        assert_eq!(
            out,
            vec![WindowResult {
                key: 7,
                start: 0,
                end: 10,
                sum: 7,
                count: 2,
                max: 5
            }]
        );
        assert_eq!(op.open_windows(), 1);
        out.clear();
        op.on_watermark(u64::MAX, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sum, 9);
    }

    #[test]
    fn session_windows_merge_across_the_gap() {
        let mut op = WindowedAggregate::new(WindowAssigner::Session { gap: 5 }, kv);
        // 1 and 4 chain into one session; 20 opens another.
        feed(&mut op, &[(1, 1, 10), (20, 1, 30), (4, 1, 20)]);
        let state = op.state();
        assert_eq!(state.len(), 2);
        assert_eq!(state[0], [1, 1, 9, 30, 2, 20]); // [1, 4+5)
        assert_eq!(state[1], [1, 20, 25, 30, 1, 30]);
    }

    #[test]
    fn session_merge_bridges_two_existing_sessions() {
        let mut op = WindowedAggregate::new(WindowAssigner::Session { gap: 3 }, kv);
        // 7 chains to 10 ([7,13)), 4 touches 7 ([4,13)), but 0 stays its
        // own session ([0,3)) — until 3 arrives last, touches both sides
        // and bridges everything into one session.
        feed(&mut op, &[(0, 9, 1), (10, 9, 1), (7, 9, 1), (4, 9, 1)]);
        assert_eq!(op.open_windows(), 2);
        feed(&mut op, &[(3, 9, 1)]);
        assert_eq!(op.open_windows(), 1);
        assert_eq!(op.state()[0], [9, 0, 13, 5, 5, 1]);
    }

    #[test]
    fn batch_fold_matches_per_event_fold_under_any_slab_split() {
        let events: Vec<StreamEvent<(u64, u64)>> = (0..60u64)
            .map(|i| StreamEvent::new((i * 7) % 40, (i % 3, i.wrapping_mul(0x9E37))))
            .collect();
        for assigner in [
            WindowAssigner::Tumbling { size: 10 },
            WindowAssigner::Sliding { size: 12, slide: 4 },
            WindowAssigner::Session { gap: 3 },
        ] {
            let mut by_event = WindowedAggregate::new(assigner, kv);
            let mut out = Vec::new();
            for ev in &events {
                by_event.on_event(ev, &mut out);
            }
            for split in [1usize, 7, 17, 60] {
                let mut by_batch = WindowedAggregate::new(assigner, kv);
                for slab in events.chunks(split) {
                    by_batch.on_batch(slab, &mut out);
                }
                assert_eq!(
                    by_batch.state(),
                    by_event.state(),
                    "{assigner:?} diverged at slab size {split}"
                );
            }
            assert!(out.is_empty(), "no immediate outputs expected");
        }
    }

    #[test]
    fn snapshot_round_trips_and_digests_stably() {
        let mut op = WindowedAggregate::new(WindowAssigner::Sliding { size: 8, slide: 4 }, kv);
        feed(&mut op, &[(1, 2, 3), (6, 2, 4), (9, 5, 1)]);
        let state = op.state();
        let mut h1 = Xxh64::new(7);
        WindowedAggregate::<(u64, u64)>::write_state(&state, &mut h1);
        let d1 = h1.finish();

        let mut restored = WindowedAggregate::new(WindowAssigner::Sliding { size: 8, slide: 4 }, kv);
        restored.restore(state.clone());
        let mut h2 = Xxh64::new(7);
        WindowedAggregate::<(u64, u64)>::write_state(&restored.state(), &mut h2);
        assert_eq!(d1, h2.finish());

        // Firing order after restore matches the original.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        op.on_watermark(u64::MAX, &mut a);
        restored.on_watermark(u64::MAX, &mut b);
        assert_eq!(a, b);
    }
}
