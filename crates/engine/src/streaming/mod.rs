//! Event-time streaming — the paper's stated future work (§VIII: "we plan
//! to extend the evaluation with SQL and streaming benchmarks, and examine
//! in this context whether treating batches as finite sets of streamed
//! data pays off").
//!
//! The layer is built on four pieces, all driven by a **deterministic
//! logical clock** (event time is a plain `u64` tick; no `Instant`
//! anywhere, so every test and chaos drill replays bit-for-bit):
//!
//! - [`source`] — a replayable event source that assigns watermarks at
//!   fixed stream positions and can deterministically disorder or delay
//!   events ([`source::shuffle_bounded`], [`source::delay_every`]).
//! - [`window`] — event-time window assignment (tumbling / sliding /
//!   session with merging) and the [`StreamOperator`] trait that window
//!   state snapshots plug into.
//! - [`runtime`] — two checkpointed runtimes over the same source
//!   semantics: [`runtime::run_continuous_checkpointed`] (record-at-a-time
//!   across threads, channel-aligned barriers à la `flink::Msg::Barrier`)
//!   and [`runtime::run_micro_batch_checkpointed`] (discretized batches of
//!   exactly one checkpoint interval). Both commit window results through
//!   a transactional sink, so under seeded kills, stragglers and rotten
//!   checkpoints each result is emitted **exactly once** — byte-equal to
//!   an independent oracle.
//! - [`model`] — the closed-form latency model answering the §VIII
//!   question quantitatively ([`run_micro_batch`] vs [`run_continuous`])
//!   in logical ticks, immune to scheduler noise.
//!
//! ## Exactly-once, in one paragraph
//!
//! The source broadcasts `Barrier(k)` after every `checkpoint_interval`
//! events; a task snapshots its operator state when the barrier arrives
//! (sealed with an xxHash64 digest under the fault plan's checksum seed)
//! and forwards the barrier. The sink buffers outputs per epoch and
//! commits epoch `k` only when barrier `k` has arrived from every task —
//! and only if `k` is newer than the last committed epoch. On failure the
//! job restarts from the newest *clean* complete snapshot (rotten digests
//! are rejected and counted), the source replays the covered prefix
//! silently, and replayed epochs are suppressed at the sink.
//!
//! ## Batch-native transport
//!
//! With `StreamJobConfig::slab_rows > 1` (the default) the continuous
//! runtime moves events between source, tasks and sink in *slabs* rather
//! than one channel send per record. Watermarks ride **in-band** inside
//! the slab at their exact stream position, so slabs span watermark ticks
//! and flush only at barriers or stream end; tasks fold each
//! between-watermark run through [`StreamOperator::on_batch`] and sinks
//! receive whole output batches. Per-partition ordering of events and
//! watermarks is identical to the per-event transport, so every committed
//! `(epoch, result)` sequence is byte-equal to `slab_rows: 1` — proptested
//! under arbitrary kill schedules.

pub mod model;
pub mod runtime;
pub mod source;
pub mod window;

pub use model::{run_continuous, run_micro_batch, StreamStats};
pub use runtime::{run_continuous_checkpointed, run_micro_batch_checkpointed, StreamJobConfig, StreamRunResult};
pub use source::{delay_every, shuffle_bounded, SourceConfig, StreamSource};
pub use window::{StreamOperator, WindowAssigner, WindowResult, WindowedAggregate};

/// A stream record stamped with its logical event time.
///
/// Event time is a `u64` tick assigned by the generator, not a wall
/// clock: determinism is the whole point (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamEvent<T> {
    /// Logical event time in ticks.
    pub time: u64,
    /// The payload.
    pub payload: T,
}

impl<T> StreamEvent<T> {
    /// Stamps a payload with an event time.
    pub fn new(time: u64, payload: T) -> Self {
        Self { time, payload }
    }
}
