//! Replayable event sources with deterministic disorder.
//!
//! Watermarks are assigned at fixed *stream positions* (after every
//! `watermark_every` emitted events), not on a timer: `watermark =
//! max event time seen − allowance`. Position-based assignment is what
//! makes the micro-batch and continuous runtimes byte-equal — both see
//! the same watermark at the same point in the global event order, so
//! one oracle verifies both.
//!
//! [`shuffle_bounded`] and [`delay_every`] perturb arrival order
//! deterministically (seeded, no RNG state carried across calls):
//! bounded shuffles model network jitter (events arrive out of order but
//! within the allowance), targeted delays model genuinely late data that
//! the watermark has already passed.

use super::StreamEvent;

/// Watermark policy and end-of-stream behaviour of a source.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Watermark allowance in ticks: `watermark = max_time − allowance`.
    /// Events older than the watermark at processing time are dropped as
    /// late.
    pub allowance: u64,
    /// Emit a watermark after every this many events (≥ 1).
    pub watermark_every: u64,
    /// Stop advancing the watermark after this many emitted events —
    /// models a stalled upstream partition. Watermark lag then grows
    /// without bound, which is what the serve-layer liveness SLO watches.
    pub stall_watermark_after: Option<u64>,
    /// Park (cancellably) after the last event instead of closing the
    /// stream — a long-running tenant that never finishes on its own.
    /// Only meaningful for the continuous runtime.
    pub hold_at_end: bool,
}

impl Default for SourceConfig {
    fn default() -> Self {
        Self {
            allowance: 64,
            watermark_every: 32,
            stall_watermark_after: None,
            hold_at_end: false,
        }
    }
}

/// A finite, replayable stream: the full event vector plus the watermark
/// policy. Replay after a region restart re-reads the same vector from
/// index zero, silently skipping the prefix covered by the restored
/// checkpoint.
#[derive(Debug, Clone)]
pub struct StreamSource<T> {
    /// Events in arrival order (event *time* may be out of order —
    /// that's the point).
    pub events: Vec<StreamEvent<T>>,
    /// Watermark policy.
    pub config: SourceConfig,
}

impl<T> StreamSource<T> {
    /// Wraps events with the default watermark policy.
    pub fn new(events: Vec<StreamEvent<T>>) -> Self {
        Self {
            events,
            config: SourceConfig::default(),
        }
    }

    /// Wraps events with an explicit policy.
    pub fn with_config(events: Vec<StreamEvent<T>>, config: SourceConfig) -> Self {
        Self { events, config }
    }
}

/// SplitMix64 — the same tiny mixer the fault layer uses, local so the
/// source has no dependency on fault-plan internals.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically disorders arrival order: each event at index `i`
/// gets priority `i + (hash(seed, i) % (max_shift + 1))` and events are
/// stably sorted by priority. No event moves more than `max_shift`
/// positions relative to any later event, so with
/// `allowance ≥ max_shift × max inter-event tick gap` nothing arrives
/// behind the watermark — disorder without lateness.
pub fn shuffle_bounded<T>(events: Vec<StreamEvent<T>>, seed: u64, max_shift: u64) -> Vec<StreamEvent<T>> {
    let mut keyed: Vec<(u64, StreamEvent<T>)> = events
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            let jitter = splitmix(seed ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)) % (max_shift + 1);
            (i as u64 + jitter, e)
        })
        .collect();
    keyed.sort_by_key(|&(p, _)| p);
    keyed.into_iter().map(|(_, e)| e).collect()
}

/// Deterministically delays every `every`-th event by `shift` positions —
/// guaranteed-late data once `shift × inter-event gap` exceeds the
/// allowance.
pub fn delay_every<T>(events: Vec<StreamEvent<T>>, every: usize, shift: u64) -> Vec<StreamEvent<T>> {
    let every = every.max(1) as u64;
    let mut keyed: Vec<(u64, StreamEvent<T>)> = events
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            let i = i as u64;
            let p = if i % every == every - 1 { i + shift } else { i };
            (p, e)
        })
        .collect();
    keyed.sort_by_key(|&(p, _)| p);
    keyed.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<StreamEvent<u64>> {
        (0..n).map(|i| StreamEvent::new(i * 4, i)).collect()
    }

    #[test]
    fn shuffle_is_deterministic_and_bounded() {
        let a = shuffle_bounded(stream(200), 11, 6);
        let b = shuffle_bounded(stream(200), 11, 6);
        assert_eq!(a, b);
        let c = shuffle_bounded(stream(200), 12, 6);
        assert_ne!(a, c, "different seeds should disorder differently");
        // Same multiset, bounded displacement.
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, stream(200));
        for (pos, ev) in a.iter().enumerate() {
            let home = ev.payload as i64;
            assert!((pos as i64 - home).abs() <= 6, "event {home} moved to {pos}");
        }
    }

    #[test]
    fn delay_every_moves_only_targets() {
        let d = delay_every(stream(20), 5, 7);
        assert_eq!(d.len(), 20);
        let mut sorted = d.clone();
        sorted.sort();
        assert_eq!(sorted, stream(20));
        // Element 4 (first delayed) now arrives after element 11
        // (4 + 7 = priority 11, stable sort puts it behind index 11).
        let pos4 = d.iter().position(|e| e.payload == 4).unwrap();
        assert!(pos4 > 7, "delayed event still arrives early: {pos4}");
    }
}
