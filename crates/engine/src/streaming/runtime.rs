//! Checkpointed streaming runtimes: exactly-once under chaos.
//!
//! Two runtimes execute the same `(source, operator)` job:
//!
//! - [`run_continuous_checkpointed`] — record-at-a-time. A source thread
//!   routes events to `parallelism` task threads over bounded channels
//!   and broadcasts `Watermark` / `Barrier` control messages at fixed
//!   stream positions (the `flink::Msg::Barrier` pattern). Tasks
//!   snapshot operator state when a barrier arrives — sealed with an
//!   xxHash64 digest under the fault plan's checksum seed — and forward
//!   the barrier to a transactional sink.
//! - [`run_micro_batch_checkpointed`] — discretized: the driver
//!   processes events sequentially and treats every checkpoint interval
//!   as one batch, checkpointing at batch boundaries.
//!
//! Because watermarks and barriers are assigned by *position in the
//! global event order* (never by wall clock), the two runtimes commit
//! byte-identical output sequences — one deterministic oracle verifies
//! both.
//!
//! ## Failure and recovery
//!
//! Faults arrive through the [`FaultPlan`]: seeded kills and stragglers
//! per `(stage, partition, attempt)`, plus checkpoint rot injected at
//! *read* time. On any task/source/sink panic the attempt tears down
//! (first panic wins, siblings drain cooperatively), and the job
//! restarts from the newest complete checkpoint whose every per-task
//! digest still verifies — rotten snapshots are rejected
//! (`checkpoints_rejected`, `corruptions_detected`) and the walk
//! continues downward. The source then replays the stream from index
//! zero, silently skipping the restored prefix; the sink refuses to
//! commit any epoch at or below the last committed one, so replayed
//! results are suppressed and every window result is emitted exactly
//! once.
//!
//! A **bootstrap barrier** (`Barrier(start)`) precedes the first event
//! of every attempt, so a complete, digest-sealed checkpoint exists
//! before any fault can fire — recovery always has a floor to stand on.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use flowmark_columnar::checksum::Xxh64;

use crate::faults::{check_cancelled, CancelToken, FaultPlan, JobCancelled, StreamFault};
use crate::metrics::EngineMetrics;

use super::source::{SourceConfig, StreamSource};
use super::window::StreamOperator;

/// Checkpoint interval (events per epoch) when the fault plan does not
/// set `checkpoint_interval_records`.
const DEFAULT_INTERVAL: u64 = 64;
/// Poll slice for cooperative receive loops (checks the shared failure
/// flag between waits).
const POLL: Duration = Duration::from_millis(2);

/// Deployment shape of a streaming job.
#[derive(Debug, Clone)]
pub struct StreamJobConfig {
    /// Task parallelism (≥ 1). Events are routed by `route(payload) %
    /// parallelism`.
    pub parallelism: usize,
    /// Bounded channel capacity per task (continuous runtime only).
    pub channel_capacity: usize,
    /// Base stage id for fault addressing: the source is `stage`, tasks
    /// are `stage + 1`.
    pub stage: u64,
    /// Watermark-lag gauge (`frontier − watermark`, in ticks), updated
    /// at every watermark decision — the serve layer's liveness SLO
    /// polls this.
    pub lag_gauge: Option<Arc<AtomicU64>>,
    /// Events per transport slab on the batch-native path. Events headed
    /// for the same task accumulate into a slab that is sent (and folded
    /// via [`StreamOperator::on_batch`]) as one unit. Watermarks ride
    /// *inside* the slab as [`SlabEntry::Watermark`] at their exact
    /// stream position, so slabs span watermark ticks and only barriers
    /// (and stream end) force a flush; per-partition ordering of events
    /// and watermarks — and therefore every committed `(epoch, result)`
    /// — is byte-identical to the record path. `<= 1` selects the legacy
    /// event-at-a-time transport (the per-event A/B reference).
    pub slab_rows: usize,
}

impl Default for StreamJobConfig {
    fn default() -> Self {
        Self {
            parallelism: 2,
            channel_capacity: 256,
            stage: 900,
            lag_gauge: None,
            slab_rows: flowmark_columnar::DEFAULT_BATCH_ROWS,
        }
    }
}

/// What a streaming run committed.
#[derive(Debug, Clone)]
pub struct StreamRunResult<Out> {
    /// Every committed output, tagged with the epoch that committed it,
    /// in commit order (epoch, then partition, then generation order).
    /// Deterministic: identical across runtimes and across replays.
    pub committed: Vec<(u64, Out)>,
    /// Highest committed epoch.
    pub epochs_committed: u64,
}

/// One task's sealed checkpoint snapshot.
struct TaskSnapshot<S> {
    state: S,
    watermark: u64,
    frontier: u64,
    digest: u64,
}

/// Checkpoint store: `ckpt id → per-task snapshot slots`. A checkpoint
/// is complete when every slot is filled.
type Store<S> = BTreeMap<u64, Vec<Option<TaskSnapshot<S>>>>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Seals a snapshot: digest over `(ckpt, partition, watermark,
/// frontier, state)` under the plan's checksum seed. Returns the digest
/// and the number of bytes hashed.
fn seal<Op: StreamOperator>(
    seed: u64,
    ckpt: u64,
    part: usize,
    watermark: u64,
    frontier: u64,
    state: &Op::State,
) -> (u64, u64) {
    let mut h = Xxh64::new(seed);
    h.write_u64(ckpt);
    h.write_u64(part as u64);
    h.write_u64(watermark);
    h.write_u64(frontier);
    Op::write_state(state, &mut h);
    let bytes = h.bytes_written();
    (h.finish(), bytes)
}

/// Stores one task's snapshot for checkpoint `ckpt`.
fn snapshot_task<Op: StreamOperator>(
    store: &Mutex<Store<Op::State>>,
    metrics: &EngineMetrics,
    seed: u64,
    parts: usize,
    ckpt: u64,
    part: usize,
    watermark: u64,
    frontier: u64,
    state: Op::State,
) {
    let (digest, bytes) = seal::<Op>(seed, ckpt, part, watermark, frontier, &state);
    metrics.add_checkpoint_bytes(bytes);
    metrics.add_batches_checksummed(1);
    let mut g = lock(store);
    let slots = g.entry(ckpt).or_insert_with(|| {
        let mut v = Vec::new();
        v.resize_with(parts, || None);
        v
    });
    slots[part] = Some(TaskSnapshot {
        state,
        watermark,
        frontier,
        digest,
    });
}

/// Re-digests a stored snapshot, applying the plan's read-time rot
/// decision to the *stored* digest (rot models bytes decaying at rest —
/// it is injected when the snapshot is read back, and detected because
/// the recomputed digest no longer matches).
fn snapshot_rotten<Op: StreamOperator>(
    snaps: &[Option<TaskSnapshot<Op::State>>],
    plan: &FaultPlan,
    stage: u64,
    seed: u64,
    ckpt: u64,
    attempt: u32,
) -> bool {
    for (p, slot) in snaps.iter().enumerate() {
        let Some(s) = slot.as_ref() else {
            return true;
        };
        let mut stored = s.digest;
        if plan.checkpoint_rot_decision(stage, p, ckpt, attempt) {
            stored ^= 1 << (p as u64 % 63);
        }
        let (recomputed, _) = seal::<Op>(seed, ckpt, p, s.watermark, s.frontier, &s.state);
        if recomputed != stored {
            return true;
        }
    }
    false
}

/// Background integrity scrub, run whenever checkpoint `completed`
/// finishes: re-verify the previous complete checkpoint and evict it if
/// its digests no longer match. This is what guarantees an armed
/// corruption budget fires even when the kill lands before any restore
/// walk happens.
fn scrub_previous<Op: StreamOperator>(
    store: &Mutex<Store<Op::State>>,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stage: u64,
    seed: u64,
    attempt: u32,
    completed: u64,
) {
    if !plan.active() {
        return;
    }
    let mut g = lock(store);
    let Some(&prev) = g.range(..completed).next_back().map(|(k, _)| k) else {
        return;
    };
    let Some(snaps) = g.get(&prev) else { return };
    if snaps.iter().any(Option::is_none) {
        return;
    }
    metrics.add_integrity_recomputes(1);
    if snapshot_rotten::<Op>(snaps, plan, stage, seed, prev, attempt) {
        metrics.add_corruptions_detected(1);
        metrics.add_checkpoints_rejected(1);
        g.remove(&prev);
    }
}

/// Picks the newest complete checkpoint whose digests all verify,
/// evicting incomplete and rotten candidates along the way. `None`
/// means no clean checkpoint survives — restart from scratch.
///
/// Candidates newer than `committed_floor` (the sink's last committed
/// epoch) are discarded too: tasks snapshot barrier `k` *before* the
/// sink has gathered every barrier `k` and committed the epoch, so a
/// failure in that window leaves a complete, clean snapshot whose
/// outputs were never committed. Restoring from it would skip the
/// replay that regenerates them — silent data loss. Replay from the
/// committed floor recreates both the snapshot and the outputs.
fn select_restore_point<Op: StreamOperator>(
    store: &Mutex<Store<Op::State>>,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stage: u64,
    seed: u64,
    attempt: u32,
    committed_floor: u64,
) -> Option<u64> {
    let mut g = lock(store);
    loop {
        let k = *g.keys().next_back()?;
        if k > committed_floor {
            g.remove(&k);
            continue;
        }
        let torn = g
            .get(&k)
            .map(|snaps| snaps.iter().any(Option::is_none))
            .unwrap_or(true);
        if torn {
            // A barrier some task never reached — a torn checkpoint, not
            // a corruption.
            g.remove(&k);
            continue;
        }
        metrics.add_integrity_recomputes(1);
        let rotten = g
            .get(&k)
            .map(|snaps| snapshot_rotten::<Op>(snaps, plan, stage, seed, k, attempt))
            .unwrap_or(true);
        if rotten {
            metrics.add_corruptions_detected(1);
            metrics.add_checkpoints_rejected(1);
            g.remove(&k);
            continue;
        }
        return Some(k);
    }
}

/// Appends epoch `k`'s buffered outputs to the committed log — unless
/// `k` is at or below the last committed epoch (a replayed prefix after
/// recovery), in which case the regenerated outputs are suppressed.
fn commit_epoch<Out>(
    k: u64,
    pending: &mut BTreeMap<u64, Vec<Vec<Out>>>,
    committed: &Mutex<Vec<(u64, Out)>>,
    last_committed: &AtomicU64,
    metrics: &EngineMetrics,
) {
    let outs = pending.remove(&k).unwrap_or_default();
    let mut log = lock(committed);
    if k > last_committed.load(Ordering::Acquire) {
        for part_outs in outs {
            for o in part_outs {
                log.push((k, o));
            }
        }
        last_committed.store(k, Ordering::Release);
        metrics.add_checkpoints_taken(1);
    }
}

fn remember_panic(slot: &Mutex<Option<Box<dyn Any + Send>>>, payload: Box<dyn Any + Send>) {
    let mut g = lock(slot);
    if g.is_none() {
        *g = Some(payload);
    }
}

/// Cooperative bounded send: spins (with a backpressure count on first
/// block) until delivered, the attempt fails, or the receiver is gone.
fn send_coop<M>(tx: &Sender<M>, msg: M, failed: &AtomicBool, metrics: &EngineMetrics) -> bool {
    let mut msg = msg;
    let mut blocked = false;
    loop {
        if failed.load(Ordering::Acquire) {
            return false;
        }
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Full(m)) => {
                if !blocked {
                    blocked = true;
                    metrics.add_backpressure_waits(1);
                }
                msg = m;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// Cooperative receive: `None` once the attempt failed or the channel
/// closed.
fn recv_coop<M>(rx: &Receiver<M>, failed: &AtomicBool) -> Option<M> {
    loop {
        match rx.recv_timeout(POLL) {
            Ok(m) => return Some(m),
            Err(RecvTimeoutError::Timeout) => {
                if failed.load(Ordering::Acquire) {
                    return None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

/// One entry of a routed slab: events in arrival order, with watermark
/// advances carried *in-band* at their exact stream position — so a slab
/// can span watermark ticks (only barriers force a flush) while the task
/// replays the identical event/watermark interleaving the per-event
/// transport delivers.
enum SlabEntry<T> {
    Event(super::StreamEvent<T>),
    Watermark(u64),
}

/// Control-plane messages on a task's input channel.
enum TaskMsg<T> {
    Event(super::StreamEvent<T>),
    /// A slab of routed events and in-band watermarks (batch-native
    /// transport): one channel send and one [`StreamOperator::on_batch`]
    /// fold per uninterrupted event run.
    Events(Vec<SlabEntry<T>>),
    Watermark(u64),
    Barrier(u64),
    Done,
}

/// Messages into the transactional sink, tagged with the producing
/// partition.
enum SinkMsg<Out> {
    Item(usize, Out),
    /// A slab's outputs, appended to the epoch buffer in generation order.
    Items(usize, Vec<Out>),
    Barrier(usize, u64),
    Done(usize),
}

fn stalled(cfg: &SourceConfig, emitted: u64) -> bool {
    cfg.stall_watermark_after.is_some_and(|cut| emitted > cut)
}

/// Classifies a recovery step shared by both runtimes: rethrows
/// cancellations and exhausted attempts, otherwise picks the restore
/// point and backs off.
#[allow(clippy::too_many_arguments)]
fn recover_or_rethrow<Op: StreamOperator>(
    payload: Box<dyn Any + Send>,
    attempt: &mut u32,
    max_attempts: u32,
    store: &Mutex<Store<Op::State>>,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    stage_op: u64,
    seed: u64,
    cancel: &CancelToken,
    committed_floor: u64,
) -> Option<u64> {
    if payload.downcast_ref::<JobCancelled>().is_some() {
        resume_unwind(payload);
    }
    let failed_attempt = *attempt;
    *attempt += 1;
    if *attempt >= max_attempts {
        resume_unwind(payload);
    }
    metrics.add_task_retries(1);
    metrics.add_region_restarts(1);
    let restore = select_restore_point::<Op>(
        store,
        plan,
        metrics,
        stage_op,
        seed,
        failed_attempt,
        committed_floor,
    );
    cancel.sleep(plan.backoff(*attempt));
    restore
}

/// Runs a streaming job record-at-a-time with channel-aligned
/// checkpoints: source thread → `parallelism` task threads →
/// transactional sink. See the module docs for the recovery contract.
pub fn run_continuous_checkpointed<Op, F>(
    source: &StreamSource<Op::In>,
    make_op: F,
    route: fn(&Op::In) -> u64,
    cfg: &StreamJobConfig,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    cancel: &CancelToken,
) -> StreamRunResult<Op::Out>
where
    Op: StreamOperator,
    F: Fn(usize) -> Op + Sync,
{
    let parts = cfg.parallelism.max(1);
    let interval = match plan.checkpoint_interval_records() {
        0 => DEFAULT_INTERVAL,
        n => n,
    };
    let n = source.events.len() as u64;
    let final_epoch = n / interval + 1;
    let seed = plan.checksum_seed();
    let (stage_src, stage_op) = (cfg.stage, cfg.stage + 1);
    let max_attempts = plan.max_attempts().max(1);

    let store: Mutex<Store<Op::State>> = Mutex::new(BTreeMap::new());
    let committed: Mutex<Vec<(u64, Op::Out)>> = Mutex::new(Vec::new());
    let last_committed = AtomicU64::new(0);
    let mut restore_from: Option<u64> = None;
    let mut attempt = 0u32;
    let make_op = &make_op;

    loop {
        let failed = Arc::new(AtomicBool::new(false));
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let start = restore_from.unwrap_or(0);

        // Deterministic fault arming order: tasks 0..P, then the source.
        let mut task_faults: Vec<StreamFault> = (0..parts)
            .map(|p| plan.stream_fault(metrics, stage_op, p, attempt, Arc::clone(&failed)))
            .collect();
        let mut src_fault =
            plan.stream_fault(metrics, stage_src, parts, attempt, Arc::clone(&failed));

        // Clone restored state out of the store before spawning.
        let restored: Vec<Option<(Op::State, u64, u64)>> = match restore_from {
            Some(g) => {
                let st = lock(&store);
                (0..parts)
                    .map(|p| {
                        st.get(&g).and_then(|snaps| {
                            snaps[p]
                                .as_ref()
                                .map(|s| (s.state.clone(), s.watermark, s.frontier))
                        })
                    })
                    .collect()
            }
            None => (0..parts).map(|_| None).collect(),
        };

        let (sink_tx, sink_rx) = bounded::<SinkMsg<Op::Out>>(cfg.channel_capacity.max(1) * parts);
        let mut txs = Vec::with_capacity(parts);
        let mut rxs = Vec::with_capacity(parts);
        for _ in 0..parts {
            let (tx, rx) = bounded::<TaskMsg<Op::In>>(cfg.channel_capacity.max(1));
            txs.push(tx);
            rxs.push(rx);
        }

        std::thread::scope(|s| {
            // Transactional sink.
            {
                let failed = Arc::clone(&failed);
                let first_panic = &first_panic;
                let store = &store;
                let committed = &committed;
                let last_committed = &last_committed;
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        sink_loop::<Op>(
                            &sink_rx,
                            parts,
                            start,
                            committed,
                            last_committed,
                            store,
                            plan,
                            attempt,
                            seed,
                            stage_op,
                            &failed,
                            metrics,
                        );
                    }));
                    if let Err(p) = r {
                        failed.store(true, Ordering::Release);
                        remember_panic(first_panic, p);
                    }
                });
            }
            // Window tasks.
            for (p, (rx, (mut fault, restored_p))) in rxs
                .drain(..)
                .zip(task_faults.drain(..).zip(restored.into_iter()))
                .enumerate()
            {
                let sink_tx = sink_tx.clone();
                let failed = Arc::clone(&failed);
                let first_panic = &first_panic;
                let store = &store;
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let mut op = make_op(p);
                        task_loop(
                            &mut op, p, &rx, &sink_tx, restored_p, store, parts, seed,
                            &mut fault, &failed, cancel, metrics, stage_op,
                        );
                    }));
                    if let Err(pl) = r {
                        failed.store(true, Ordering::Release);
                        remember_panic(first_panic, pl);
                    }
                });
            }
            drop(sink_tx);
            // Source runs on the scope's own thread.
            let r = catch_unwind(AssertUnwindSafe(|| {
                source_loop(
                    source, route, &txs, start, interval, final_epoch, cfg.slab_rows,
                    &mut src_fault, &failed, cancel, metrics, stage_src,
                    cfg.lag_gauge.as_ref(),
                );
            }));
            if let Err(p) = r {
                failed.store(true, Ordering::Release);
                remember_panic(&first_panic, p);
            }
            txs.clear();
        });

        let payload = lock(&first_panic).take();
        match payload {
            None => {
                return StreamRunResult {
                    committed: std::mem::take(&mut *lock(&committed)),
                    epochs_committed: last_committed.load(Ordering::Acquire),
                };
            }
            Some(payload) => {
                restore_from = recover_or_rethrow::<Op>(
                    payload,
                    &mut attempt,
                    max_attempts,
                    &store,
                    plan,
                    metrics,
                    stage_op,
                    seed,
                    cancel,
                    last_committed.load(Ordering::Acquire),
                );
            }
        }
    }
}

/// Flushes every non-empty routing slab as one [`TaskMsg::Events`] send.
/// Called before barrier broadcasts (and at stream end) so barriers never
/// overtake the events they follow in stream order; watermarks ride
/// inside the slab as [`SlabEntry::Watermark`] and need no flush.
fn flush_slabs<T: Clone + Send>(
    slabs: &mut [Vec<SlabEntry<T>>],
    txs: &[Sender<TaskMsg<T>>],
    failed: &AtomicBool,
    metrics: &EngineMetrics,
) -> bool {
    for (p, slab) in slabs.iter_mut().enumerate() {
        if slab.is_empty() {
            continue;
        }
        if !send_coop(&txs[p], TaskMsg::Events(std::mem::take(slab)), failed, metrics) {
            return false;
        }
    }
    true
}

/// Source thread body: replays the event vector, skipping the restored
/// prefix, broadcasting watermarks and barriers at fixed positions.
#[allow(clippy::too_many_arguments)]
fn source_loop<T: Clone + Send>(
    src: &StreamSource<T>,
    route: fn(&T) -> u64,
    txs: &[Sender<TaskMsg<T>>],
    start: u64,
    interval: u64,
    final_epoch: u64,
    slab_rows: usize,
    fault: &mut StreamFault,
    failed: &AtomicBool,
    cancel: &CancelToken,
    metrics: &EngineMetrics,
    stage: u64,
    lag_gauge: Option<&Arc<AtomicU64>>,
) {
    let cfg = &src.config;
    let wm_every = cfg.watermark_every.max(1);
    let parts = txs.len();
    let skip = (start * interval).min(src.events.len() as u64);
    let mut frontier = 0u64;
    let mut wm = 0u64;
    let slabbed = slab_rows > 1;
    let mut slabs: Vec<Vec<SlabEntry<T>>> = (0..parts).map(|_| Vec::new()).collect();

    // Bootstrap barrier: seal the starting state before any event.
    for tx in txs {
        if !send_coop(tx, TaskMsg::Barrier(start), failed, metrics) {
            return;
        }
    }
    for (idx, ev) in src.events.iter().enumerate() {
        let idx = idx as u64;
        let emitted = idx + 1;
        if idx < skip {
            // Silent replay of the restored prefix: fold the watermark
            // state the restored tasks already embody, send nothing.
            frontier = frontier.max(ev.time);
            if emitted % wm_every == 0 && !stalled(cfg, emitted) {
                wm = frontier.saturating_sub(cfg.allowance);
            }
            continue;
        }
        check_cancelled(cancel, metrics, stage, parts);
        fault.on_event();
        frontier = frontier.max(ev.time);
        let p = (route(&ev.payload) % parts as u64) as usize;
        metrics.add_records_read(1);
        if slabbed {
            slabs[p].push(SlabEntry::Event(ev.clone()));
            if slabs[p].len() >= slab_rows
                && !send_coop(
                    &txs[p],
                    TaskMsg::Events(std::mem::take(&mut slabs[p])),
                    failed,
                    metrics,
                )
            {
                return;
            }
        } else if !send_coop(&txs[p], TaskMsg::Event(ev.clone()), failed, metrics) {
            return;
        }
        if emitted % wm_every == 0 {
            if !stalled(cfg, emitted) {
                wm = frontier.saturating_sub(cfg.allowance);
            }
            if let Some(g) = lag_gauge {
                g.store(frontier.saturating_sub(wm), Ordering::Release);
            }
            if slabbed {
                // In-band: the watermark rides inside every partition's
                // slab at its exact stream position, so slabs keep
                // growing across watermark ticks and only barriers (and
                // stream end) force a flush.
                for slab in &mut slabs {
                    slab.push(SlabEntry::Watermark(wm));
                }
            } else {
                for tx in txs {
                    if !send_coop(tx, TaskMsg::Watermark(wm), failed, metrics) {
                        return;
                    }
                }
            }
        }
        if emitted % interval == 0 {
            if !flush_slabs(&mut slabs, txs, failed, metrics) {
                return;
            }
            for tx in txs {
                if !send_coop(tx, TaskMsg::Barrier(emitted / interval), failed, metrics) {
                    return;
                }
            }
        }
    }
    if !flush_slabs(&mut slabs, txs, failed, metrics) {
        return;
    }
    fault.on_finish();
    if cfg.hold_at_end {
        // A long-running tenant: park cancellably with the lag gauge
        // live. Only a cancel (deadline, SLO watchdog) or a sibling
        // failure ends the job.
        loop {
            check_cancelled(cancel, metrics, stage, parts);
            if failed.load(Ordering::Acquire) {
                return;
            }
            if let Some(g) = lag_gauge {
                g.store(frontier.saturating_sub(wm), Ordering::Release);
            }
            std::thread::sleep(POLL);
        }
    }
    // Final flush: a MAX watermark fires every open window, the final
    // barrier commits the flush epoch, Done closes the stream.
    for tx in txs {
        if !send_coop(tx, TaskMsg::Watermark(u64::MAX), failed, metrics) {
            return;
        }
    }
    for tx in txs {
        if !send_coop(tx, TaskMsg::Barrier(final_epoch), failed, metrics) {
            return;
        }
    }
    for tx in txs {
        let _ = send_coop(tx, TaskMsg::Done, failed, metrics);
    }
}

/// Task thread body: folds events, fires windows on watermarks, seals
/// snapshots on barriers. After a sibling failure it keeps *draining*
/// buffered messages (alignment: a snapshot at barrier `k` must reflect
/// every event before `k` in channel order) but stops forwarding.
#[allow(clippy::too_many_arguments)]
fn task_loop<Op: StreamOperator>(
    op: &mut Op,
    part: usize,
    rx: &Receiver<TaskMsg<Op::In>>,
    sink: &Sender<SinkMsg<Op::Out>>,
    restored: Option<(Op::State, u64, u64)>,
    store: &Mutex<Store<Op::State>>,
    parts: usize,
    seed: u64,
    fault: &mut StreamFault,
    failed: &AtomicBool,
    cancel: &CancelToken,
    metrics: &EngineMetrics,
    stage: u64,
) {
    let mut watermark = 0u64;
    let mut frontier = 0u64;
    if let Some((state, wm, fr)) = restored {
        op.restore(state);
        watermark = wm;
        frontier = fr;
        metrics.add_stream_checkpoints_restored(1);
    }
    metrics.add_tasks_launched(1);
    let mut buf: Vec<Op::Out> = Vec::new();
    let mut live = true;
    loop {
        let msg = if live {
            match recv_coop(rx, failed) {
                Some(m) => m,
                None => {
                    live = false;
                    continue;
                }
            }
        } else {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        };
        match msg {
            TaskMsg::Event(ev) => {
                if live {
                    check_cancelled(cancel, metrics, stage, part);
                    fault.on_event();
                }
                if ev.time < watermark {
                    metrics.add_late_events_dropped(1);
                    continue;
                }
                if ev.time < frontier {
                    metrics.add_watermark_lag_events(1);
                }
                frontier = frontier.max(ev.time);
                op.on_event(&ev, &mut buf);
                metrics.add_compute_calls(1);
                for o in buf.drain(..) {
                    if live && !send_coop(sink, SinkMsg::Item(part, o), failed, metrics) {
                        live = false;
                    }
                }
            }
            TaskMsg::Events(slab) => {
                if live {
                    check_cancelled(cancel, metrics, stage, part);
                }
                metrics.add_stream_batches(1);
                // Events between two in-band watermarks form a *run* that
                // folds batch-at-a-time; each watermark first flushes the
                // pending run, then fires windows exactly as the record
                // transport's broadcast watermark would at that position.
                let mut run: Vec<super::StreamEvent<Op::In>> = Vec::new();
                for entry in slab {
                    match entry {
                        SlabEntry::Event(ev) => {
                            if live {
                                // Per-event fault arming keeps kill
                                // positions identical to the record
                                // transport; recovery replays the slab
                                // whole from the sealed snapshot.
                                fault.on_event();
                            }
                            if ev.time < watermark {
                                metrics.add_late_events_dropped(1);
                                continue;
                            }
                            if ev.time < frontier {
                                metrics.add_watermark_lag_events(1);
                            }
                            frontier = frontier.max(ev.time);
                            run.push(ev);
                        }
                        SlabEntry::Watermark(w) => {
                            if !run.is_empty() {
                                op.on_batch(&run, &mut buf);
                                metrics.add_compute_calls(run.len() as u64);
                                run.clear();
                                if !buf.is_empty() {
                                    if live {
                                        if !send_coop(
                                            sink,
                                            SinkMsg::Items(part, std::mem::take(&mut buf)),
                                            failed,
                                            metrics,
                                        ) {
                                            live = false;
                                        }
                                    } else {
                                        buf.clear();
                                    }
                                }
                            }
                            if w > watermark {
                                watermark = w;
                                op.on_watermark(w, &mut buf);
                                metrics.add_windows_emitted(buf.len() as u64);
                                for o in buf.drain(..) {
                                    if live
                                        && !send_coop(
                                            sink,
                                            SinkMsg::Item(part, o),
                                            failed,
                                            metrics,
                                        )
                                    {
                                        live = false;
                                    }
                                }
                            }
                        }
                    }
                }
                if run.is_empty() {
                    continue;
                }
                op.on_batch(&run, &mut buf);
                metrics.add_compute_calls(run.len() as u64);
                if buf.is_empty() {
                    continue;
                }
                if live {
                    if !send_coop(sink, SinkMsg::Items(part, std::mem::take(&mut buf)), failed, metrics) {
                        live = false;
                    }
                } else {
                    buf.clear();
                }
            }
            TaskMsg::Watermark(w) => {
                if w > watermark {
                    watermark = w;
                    op.on_watermark(w, &mut buf);
                    metrics.add_windows_emitted(buf.len() as u64);
                    for o in buf.drain(..) {
                        if live && !send_coop(sink, SinkMsg::Item(part, o), failed, metrics) {
                            live = false;
                        }
                    }
                }
            }
            TaskMsg::Barrier(k) => {
                snapshot_task::<Op>(
                    store, metrics, seed, parts, k, part, watermark, frontier,
                    op.state(),
                );
                if live && !send_coop(sink, SinkMsg::Barrier(part, k), failed, metrics) {
                    live = false;
                }
            }
            TaskMsg::Done => {
                if live {
                    let _ = send_coop(sink, SinkMsg::Done(part), failed, metrics);
                }
                break;
            }
        }
    }
}

/// Transactional sink body: buffers outputs per epoch, commits an epoch
/// when its barrier has arrived from every task, suppresses replayed
/// epochs, and scrubs the previous checkpoint after each completion.
#[allow(clippy::too_many_arguments)]
fn sink_loop<Op: StreamOperator>(
    rx: &Receiver<SinkMsg<Op::Out>>,
    parts: usize,
    start: u64,
    committed: &Mutex<Vec<(u64, Op::Out)>>,
    last_committed: &AtomicU64,
    store: &Mutex<Store<Op::State>>,
    plan: &FaultPlan,
    attempt: u32,
    seed: u64,
    stage_op: u64,
    failed: &AtomicBool,
    metrics: &EngineMetrics,
) {
    let mut cur = vec![start; parts];
    let mut pending: BTreeMap<u64, Vec<Vec<Op::Out>>> = BTreeMap::new();
    let mut done = vec![false; parts];
    while let Some(msg) = recv_coop(rx, failed) {
        match msg {
            SinkMsg::Item(p, o) => {
                pending
                    .entry(cur[p])
                    .or_insert_with(|| (0..parts).map(|_| Vec::new()).collect())[p]
                    .push(o);
            }
            SinkMsg::Items(p, mut outs) => {
                pending
                    .entry(cur[p])
                    .or_insert_with(|| (0..parts).map(|_| Vec::new()).collect())[p]
                    .append(&mut outs);
            }
            SinkMsg::Barrier(p, k) => {
                debug_assert_eq!(k, cur[p], "barrier misalignment on partition {p}");
                cur[p] = k + 1;
                if cur.iter().all(|&c| c > k) {
                    commit_epoch(k, &mut pending, committed, last_committed, metrics);
                    scrub_previous::<Op>(store, plan, metrics, stage_op, seed, attempt, k);
                }
            }
            SinkMsg::Done(p) => {
                done[p] = true;
                if done.iter().all(|&d| d) {
                    break;
                }
            }
        }
    }
}

/// Runs the same job discretized: the driver processes events
/// sequentially, one checkpoint interval per micro-batch, snapshotting
/// and committing at every batch boundary. Commits are byte-identical
/// to [`run_continuous_checkpointed`] on the same source.
pub fn run_micro_batch_checkpointed<Op, F>(
    source: &StreamSource<Op::In>,
    make_op: F,
    route: fn(&Op::In) -> u64,
    cfg: &StreamJobConfig,
    plan: &FaultPlan,
    metrics: &EngineMetrics,
    cancel: &CancelToken,
) -> StreamRunResult<Op::Out>
where
    Op: StreamOperator,
    F: Fn(usize) -> Op,
{
    let parts = cfg.parallelism.max(1);
    let interval = match plan.checkpoint_interval_records() {
        0 => DEFAULT_INTERVAL,
        n => n,
    };
    let n = source.events.len() as u64;
    let final_epoch = n / interval + 1;
    let seed = plan.checksum_seed();
    let (stage_src, stage_op) = (cfg.stage, cfg.stage + 1);
    let max_attempts = plan.max_attempts().max(1);
    let scfg = &source.config;
    let wm_every = scfg.watermark_every.max(1);

    let store: Mutex<Store<Op::State>> = Mutex::new(BTreeMap::new());
    let committed: Mutex<Vec<(u64, Op::Out)>> = Mutex::new(Vec::new());
    let last_committed = AtomicU64::new(0);
    let mut restore_from: Option<u64> = None;
    let mut attempt = 0u32;

    loop {
        let failed = Arc::new(AtomicBool::new(false));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let start = restore_from.unwrap_or(0);
            let skip = (start * interval).min(n);
            let mut ops: Vec<Op> = (0..parts).map(&make_op).collect();
            let mut wms = vec![0u64; parts];
            let mut frontiers = vec![0u64; parts];
            if let Some(g) = restore_from {
                let st = lock(&store);
                for (p, op) in ops.iter_mut().enumerate() {
                    if let Some(s) = st.get(&g).and_then(|snaps| snaps[p].as_ref()) {
                        op.restore(s.state.clone());
                        wms[p] = s.watermark;
                        frontiers[p] = s.frontier;
                        metrics.add_stream_checkpoints_restored(1);
                    }
                }
            }
            metrics.add_tasks_launched(parts as u64);
            let mut task_faults: Vec<StreamFault> = (0..parts)
                .map(|p| plan.stream_fault(metrics, stage_op, p, attempt, Arc::clone(&failed)))
                .collect();
            let mut src_fault =
                plan.stream_fault(metrics, stage_src, parts, attempt, Arc::clone(&failed));

            let mut src_frontier = 0u64;
            let mut wm = 0u64;
            let mut pending: BTreeMap<u64, Vec<Vec<Op::Out>>> = BTreeMap::new();
            let mut buf: Vec<Op::Out> = Vec::new();
            let slabbed = cfg.slab_rows > 1;
            let mut slabs: Vec<Vec<super::StreamEvent<Op::In>>> =
                (0..parts).map(|_| Vec::new()).collect();

            // Bootstrap checkpoint (mirrors the continuous bootstrap
            // barrier).
            for (p, op) in ops.iter().enumerate() {
                snapshot_task::<Op>(
                    &store, metrics, seed, parts, start, p, wms[p], frontiers[p],
                    op.state(),
                );
            }
            commit_epoch(start, &mut pending, &committed, &last_committed, metrics);
            scrub_previous::<Op>(&store, plan, metrics, stage_op, seed, attempt, start);

            for (idx, ev) in source.events.iter().enumerate() {
                let idx = idx as u64;
                let emitted = idx + 1;
                if idx < skip {
                    src_frontier = src_frontier.max(ev.time);
                    if emitted % wm_every == 0 && !stalled(scfg, emitted) {
                        wm = src_frontier.saturating_sub(scfg.allowance);
                    }
                    continue;
                }
                check_cancelled(cancel, metrics, stage_src, parts);
                src_fault.on_event();
                src_frontier = src_frontier.max(ev.time);
                metrics.add_records_read(1);
                let epoch = idx / interval + 1;
                let p = (route(&ev.payload) % parts as u64) as usize;
                task_faults[p].on_event();
                if slabbed {
                    slabs[p].push(ev.clone());
                    if slabs[p].len() >= cfg.slab_rows {
                        drain_slab(
                            &mut slabs[p], &mut ops[p], wms[p], &mut frontiers[p], epoch,
                            parts, p, &mut pending, &mut buf, metrics,
                        );
                    }
                } else if ev.time < wms[p] {
                    metrics.add_late_events_dropped(1);
                } else {
                    if ev.time < frontiers[p] {
                        metrics.add_watermark_lag_events(1);
                    }
                    frontiers[p] = frontiers[p].max(ev.time);
                    ops[p].on_event(ev, &mut buf);
                    metrics.add_compute_calls(1);
                    stash(&mut pending, epoch, parts, p, &mut buf);
                }
                if emitted % wm_every == 0 {
                    if !stalled(scfg, emitted) {
                        wm = src_frontier.saturating_sub(scfg.allowance);
                    }
                    if let Some(g) = cfg.lag_gauge.as_ref() {
                        g.store(src_frontier.saturating_sub(wm), Ordering::Release);
                    }
                    for (p, op) in ops.iter_mut().enumerate() {
                        // Slabs flush before the watermark advances, as in
                        // the continuous runtime's control alignment.
                        drain_slab(
                            &mut slabs[p], op, wms[p], &mut frontiers[p], epoch, parts, p,
                            &mut pending, &mut buf, metrics,
                        );
                        if wm > wms[p] {
                            wms[p] = wm;
                            op.on_watermark(wm, &mut buf);
                            metrics.add_windows_emitted(buf.len() as u64);
                            stash(&mut pending, epoch, parts, p, &mut buf);
                        }
                    }
                }
                if emitted % interval == 0 {
                    let k = emitted / interval;
                    for (p, op) in ops.iter_mut().enumerate() {
                        drain_slab(
                            &mut slabs[p], op, wms[p], &mut frontiers[p], epoch, parts, p,
                            &mut pending, &mut buf, metrics,
                        );
                    }
                    for (p, op) in ops.iter().enumerate() {
                        snapshot_task::<Op>(
                            &store, metrics, seed, parts, k, p, wms[p], frontiers[p],
                            op.state(),
                        );
                    }
                    commit_epoch(k, &mut pending, &committed, &last_committed, metrics);
                    scrub_previous::<Op>(&store, plan, metrics, stage_op, seed, attempt, k);
                }
            }
            // Any residual slab belongs to the final flush epoch (the loop
            // drained at every earlier barrier boundary).
            for (p, op) in ops.iter_mut().enumerate() {
                drain_slab(
                    &mut slabs[p], op, wms[p], &mut frontiers[p], final_epoch, parts, p,
                    &mut pending, &mut buf, metrics,
                );
            }
            src_fault.on_finish();
            for f in &mut task_faults {
                f.on_finish();
            }
            // Final flush epoch.
            for (p, op) in ops.iter_mut().enumerate() {
                wms[p] = u64::MAX;
                op.on_watermark(u64::MAX, &mut buf);
                metrics.add_windows_emitted(buf.len() as u64);
                stash(&mut pending, final_epoch, parts, p, &mut buf);
            }
            for (p, op) in ops.iter().enumerate() {
                snapshot_task::<Op>(
                    &store, metrics, seed, parts, final_epoch, p, wms[p], frontiers[p],
                    op.state(),
                );
            }
            commit_epoch(final_epoch, &mut pending, &committed, &last_committed, metrics);
            scrub_previous::<Op>(&store, plan, metrics, stage_op, seed, attempt, final_epoch);
        }));
        match outcome {
            Ok(()) => {
                return StreamRunResult {
                    committed: std::mem::take(&mut *lock(&committed)),
                    epochs_committed: last_committed.load(Ordering::Acquire),
                };
            }
            Err(payload) => {
                restore_from = recover_or_rethrow::<Op>(
                    payload,
                    &mut attempt,
                    max_attempts,
                    &store,
                    plan,
                    metrics,
                    stage_op,
                    seed,
                    cancel,
                    last_committed.load(Ordering::Acquire),
                );
            }
        }
    }
}

/// Drains one partition's micro-batch slab: late-filters against the
/// partition watermark, folds the survivors through
/// [`StreamOperator::on_batch`] in one call, and stashes the outputs at
/// `epoch`. The slab is always flushed before the driver processes a
/// watermark or takes a barrier, so the filter sees exactly the watermark
/// the record path would have seen per event.
#[allow(clippy::too_many_arguments)]
fn drain_slab<Op: StreamOperator>(
    slab: &mut Vec<super::StreamEvent<Op::In>>,
    op: &mut Op,
    wm_p: u64,
    frontier_p: &mut u64,
    epoch: u64,
    parts: usize,
    part: usize,
    pending: &mut BTreeMap<u64, Vec<Vec<Op::Out>>>,
    buf: &mut Vec<Op::Out>,
    metrics: &EngineMetrics,
) {
    if slab.is_empty() {
        return;
    }
    metrics.add_stream_batches(1);
    let (mut late, mut lagged) = (0u64, 0u64);
    slab.retain(|ev| {
        if ev.time < wm_p {
            late += 1;
            return false;
        }
        if ev.time < *frontier_p {
            lagged += 1;
        }
        *frontier_p = (*frontier_p).max(ev.time);
        true
    });
    if late > 0 {
        metrics.add_late_events_dropped(late);
    }
    if lagged > 0 {
        metrics.add_watermark_lag_events(lagged);
    }
    if !slab.is_empty() {
        op.on_batch(slab, buf);
        metrics.add_compute_calls(slab.len() as u64);
        stash(pending, epoch, parts, part, buf);
    }
    slab.clear();
}

/// Moves buffered outputs into the given epoch's per-partition slot.
fn stash<Out>(
    pending: &mut BTreeMap<u64, Vec<Vec<Out>>>,
    epoch: u64,
    parts: usize,
    part: usize,
    buf: &mut Vec<Out>,
) {
    if buf.is_empty() {
        return;
    }
    pending
        .entry(epoch)
        .or_insert_with(|| (0..parts).map(|_| Vec::new()).collect())[part]
        .append(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{install_quiet_hook, FaultConfig};
    use crate::streaming::source::shuffle_bounded;
    use crate::streaming::window::{WindowAssigner, WindowResult, WindowedAggregate};
    use crate::streaming::StreamEvent;

    fn kv(v: &u64) -> Option<(u64, u64)> {
        Some((*v % 4, *v))
    }

    fn route(v: &u64) -> u64 {
        *v % 4
    }

    fn events(n: u64) -> Vec<StreamEvent<u64>> {
        (0..n).map(|i| StreamEvent::new(i * 3, i)).collect()
    }

    fn make_op(_p: usize) -> WindowedAggregate<u64> {
        WindowedAggregate::new(WindowAssigner::Tumbling { size: 30 }, kv)
    }

    fn run(
        continuous: bool,
        events: Vec<StreamEvent<u64>>,
        plan: &FaultPlan,
    ) -> StreamRunResult<WindowResult> {
        let source = StreamSource::with_config(
            events,
            SourceConfig {
                allowance: 40,
                watermark_every: 8,
                stall_watermark_after: None,
                hold_at_end: false,
            },
        );
        let cfg = StreamJobConfig {
            parallelism: 3,
            ..StreamJobConfig::default()
        };
        let metrics = EngineMetrics::new();
        let cancel = CancelToken::new();
        if continuous {
            run_continuous_checkpointed(&source, make_op, route, &cfg, plan, &metrics, &cancel)
        } else {
            run_micro_batch_checkpointed(&source, make_op, route, &cfg, plan, &metrics, &cancel)
        }
    }

    #[test]
    fn runtimes_commit_identical_outputs_clean() {
        let plan = FaultPlan::disabled();
        let ct = run(true, events(200), &plan);
        let mb = run(false, events(200), &plan);
        assert!(!ct.committed.is_empty());
        assert_eq!(ct.committed, mb.committed, "runtimes must be byte-equal");
        assert_eq!(ct.epochs_committed, mb.epochs_committed);
    }

    #[test]
    fn chaos_run_is_exactly_once_on_both_runtimes() {
        install_quiet_hook();
        let plan = FaultPlan::new(FaultConfig::corruption(41));
        let ct = run(true, events(200), &plan);
        let mb = run(false, events(200), &plan);
        // Exactly-once: the committed payload sequence survives kills,
        // stragglers and rotten checkpoints byte-for-byte.
        assert_eq!(ct.committed, mb.committed);
        // And it matches the clean run's payloads as a sorted multiset
        // (epoch tags differ because the corruption preset shortens the
        // checkpoint interval).
        let clean = run(true, events(200), &FaultPlan::disabled());
        let mut a: Vec<WindowResult> = clean.committed.into_iter().map(|(_, w)| w).collect();
        let mut b: Vec<WindowResult> = ct.committed.into_iter().map(|(_, w)| w).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "chaos changed the committed window results");
    }

    #[test]
    fn bounded_disorder_within_allowance_changes_nothing() {
        let plan = FaultPlan::disabled();
        let base = run(true, events(200), &plan);
        let shuffled = run(true, shuffle_bounded(events(200), 7, 5), &plan);
        let mut a: Vec<WindowResult> = base.committed.into_iter().map(|(_, w)| w).collect();
        let mut b: Vec<WindowResult> = shuffled.committed.into_iter().map(|(_, w)| w).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "bounded disorder within the allowance must be invisible");
    }

    /// Runs one job with an explicit `slab_rows`, returning the result and
    /// the metrics handle so tests can inspect the transport counters.
    fn run_slab(
        continuous: bool,
        slab_rows: usize,
        plan: &FaultPlan,
    ) -> (StreamRunResult<WindowResult>, EngineMetrics) {
        let source = StreamSource::with_config(
            events(200),
            SourceConfig {
                allowance: 40,
                watermark_every: 8,
                stall_watermark_after: None,
                hold_at_end: false,
            },
        );
        let cfg = StreamJobConfig {
            parallelism: 3,
            slab_rows,
            ..StreamJobConfig::default()
        };
        let metrics = EngineMetrics::new();
        let cancel = CancelToken::new();
        let out = if continuous {
            run_continuous_checkpointed(&source, make_op, route, &cfg, plan, &metrics, &cancel)
        } else {
            run_micro_batch_checkpointed(&source, make_op, route, &cfg, plan, &metrics, &cancel)
        };
        (out, metrics)
    }

    #[test]
    fn slab_transport_commits_byte_equal_to_per_event() {
        install_quiet_hook();
        for continuous in [true, false] {
            // Clean run: slabbed and per-event transports must be
            // indistinguishable in the committed (epoch, result) sequence.
            let (slab, m_slab) = run_slab(continuous, 64, &FaultPlan::disabled());
            let (event, m_event) = run_slab(continuous, 1, &FaultPlan::disabled());
            assert!(!slab.committed.is_empty());
            assert_eq!(slab.committed, event.committed, "clean runs diverged");
            assert!(m_slab.stream_batches() > 0, "slab path not taken");
            assert_eq!(m_event.stream_batches(), 0, "per-event path took slabs");
            // Chaos run: same kill schedule, same committed bytes.
            let (slab, _) = run_slab(continuous, 64, &FaultPlan::new(FaultConfig::chaos(9)));
            let (event, _) = run_slab(continuous, 1, &FaultPlan::new(FaultConfig::chaos(9)));
            assert_eq!(slab.committed, event.committed, "chaos runs diverged");
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        install_quiet_hook();
        let plan = FaultPlan::new(FaultConfig::chaos(9));
        let a = run(false, events(160), &plan);
        let plan = FaultPlan::new(FaultConfig::chaos(9));
        let b = run(false, events(160), &plan);
        assert_eq!(a.committed, b.committed);
    }
}
