//! Engine-internal counters, collected lock-free.
//!
//! Real-engine runs feed two consumers: correctness tests (both engines must
//! produce identical results) and the calibration of the simulator's cost
//! model. The counters here are the calibration inputs: how many records
//! crossed a shuffle, how many bytes spilled, how often lineage was
//! recomputed, how much combine reduced the data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared run metrics. Cheap to clone (Arc inside).
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    records_read: AtomicU64,
    records_shuffled: AtomicU64,
    bytes_shuffled: AtomicU64,
    bytes_spilled: AtomicU64,
    spill_events: AtomicU64,
    combine_input: AtomicU64,
    combine_output: AtomicU64,
    compute_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    tasks_launched: AtomicU64,
    iterations_run: AtomicU64,
}

macro_rules! counter_api {
    ($($field:ident => $add:ident, $get:ident);* $(;)?) => {
        $(
            /// Adds to the counter.
            pub fn $add(&self, n: u64) {
                self.inner.$field.fetch_add(n, Ordering::Relaxed);
            }
            /// Reads the counter.
            pub fn $get(&self) -> u64 {
                self.inner.$field.load(Ordering::Relaxed)
            }
        )*
    };
}

impl EngineMetrics {
    /// Creates a fresh metrics handle.
    pub fn new() -> Self {
        Self::default()
    }

    counter_api! {
        records_read => add_records_read, records_read;
        records_shuffled => add_records_shuffled, records_shuffled;
        bytes_shuffled => add_bytes_shuffled, bytes_shuffled;
        bytes_spilled => add_bytes_spilled, bytes_spilled;
        spill_events => add_spill_events, spill_events;
        combine_input => add_combine_input, combine_input;
        combine_output => add_combine_output, combine_output;
        compute_calls => add_compute_calls, compute_calls;
        cache_hits => add_cache_hits, cache_hits;
        cache_misses => add_cache_misses, cache_misses;
        tasks_launched => add_tasks_launched, tasks_launched;
        iterations_run => add_iterations_run, iterations_run;
    }

    /// Map-side combine effectiveness: output/input record ratio, 1.0 when
    /// no combining happened.
    pub fn combine_ratio(&self) -> f64 {
        let input = self.combine_input();
        if input == 0 {
            1.0
        } else {
            self.combine_output() as f64 / input as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.add_records_shuffled(10);
        m.add_records_shuffled(5);
        assert_eq!(m.records_shuffled(), 15);
        assert_eq!(m.bytes_spilled(), 0);
    }

    #[test]
    fn clone_shares_state() {
        let m = EngineMetrics::new();
        let m2 = m.clone();
        m2.add_tasks_launched(3);
        assert_eq!(m.tasks_launched(), 3);
    }

    #[test]
    fn combine_ratio_defaults_to_one() {
        let m = EngineMetrics::new();
        assert_eq!(m.combine_ratio(), 1.0);
        m.add_combine_input(100);
        m.add_combine_output(10);
        assert!((m.combine_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = EngineMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add_compute_calls(1);
                    }
                });
            }
        });
        assert_eq!(m.compute_calls(), 8000);
    }
}
