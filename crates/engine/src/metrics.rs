//! Engine-internal counters, collected lock-free.
//!
//! Real-engine runs feed two consumers: correctness tests (both engines must
//! produce identical results) and the calibration of the simulator's cost
//! model. The counters here are the calibration inputs: how many records
//! crossed a shuffle, how many bytes spilled, how often lineage was
//! recomputed, how much combine reduced the data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Shared run metrics. Cheap to clone (Arc inside).
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    records_read: AtomicU64,
    records_shuffled: AtomicU64,
    bytes_shuffled: AtomicU64,
    bytes_spilled: AtomicU64,
    spill_events: AtomicU64,
    combine_input: AtomicU64,
    combine_output: AtomicU64,
    compute_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    tasks_launched: AtomicU64,
    iterations_run: AtomicU64,
    backpressure_waits: AtomicU64,
    messages_combined: AtomicU64,
    batches_processed: AtomicU64,
    rows_selected: AtomicU64,
    points_assigned_vectorized: AtomicU64,
    radix_sort_runs: AtomicU64,
    stream_batches: AtomicU64,
    tasks_stolen: AtomicU64,
    queue_wait_micros: AtomicU64,
    queue_wait_tasks: AtomicU64,
    fragment_cache_hits: AtomicU64,
    fragment_cache_evictions: AtomicU64,
    // Streaming section (engine::streaming): event-time behaviour.
    watermark_lag_events: AtomicU64,
    windows_emitted: AtomicU64,
    late_events_dropped: AtomicU64,
    // Recovery section (engine::faults): what failure injection cost the run.
    injected_failures: AtomicU64,
    injected_stragglers: AtomicU64,
    task_retries: AtomicU64,
    partitions_recomputed: AtomicU64,
    region_restarts: AtomicU64,
    checkpoints_taken: AtomicU64,
    checkpoint_bytes: AtomicU64,
    speculative_launched: AtomicU64,
    speculative_wins: AtomicU64,
    memory_pressure_events: AtomicU64,
    pool_exhausted: AtomicU64,
    tasks_cancelled: AtomicU64,
    batches_checksummed: AtomicU64,
    corruptions_detected: AtomicU64,
    integrity_recomputes: AtomicU64,
    checkpoints_rejected: AtomicU64,
    stream_checkpoints_restored: AtomicU64,
}

/// Point-in-time copy of *every* counter, serializable so tune/chaos/bench
/// reports can embed the raw numbers behind a run in their JSON artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Records ingested from sources.
    pub records_read: u64,
    /// Records that crossed a shuffle (post-combine).
    pub records_shuffled: u64,
    /// Bytes that crossed a shuffle.
    pub bytes_shuffled: u64,
    /// Bytes written by sort-buffer spills.
    pub bytes_spilled: u64,
    /// Individual spill (sorted-run flush) events.
    pub spill_events: u64,
    /// Records entering map-side combine.
    pub combine_input: u64,
    /// Records leaving map-side combine.
    pub combine_output: u64,
    /// Partition compute invocations (lineage or pipeline).
    pub compute_calls: u64,
    /// Block-cache hits.
    pub cache_hits: u64,
    /// Block-cache misses.
    pub cache_misses: u64,
    /// Tasks launched.
    pub tasks_launched: u64,
    /// Iterations driven (iterative workloads).
    pub iterations_run: u64,
    /// Pipelined sends that found the bounded channel full and had to
    /// block — the backpressure signal the network-buffer knob relieves.
    pub backpressure_waits: u64,
    /// Iteration messages eliminated by sender-side combining before they
    /// crossed a channel (raw messages − combined messages); `default`
    /// keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub messages_combined: u64,
    /// Column batches pushed through a vectorized kernel or a
    /// batch-granularity exchange; zero on the record-at-a-time path, so
    /// tests can assert which path actually executed. `default` keeps
    /// pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub batches_processed: u64,
    /// Rows that passed a vectorized selection (filter/hash-agg probe) —
    /// the batch-path sibling of `records_read`; `default` keeps
    /// pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub rows_selected: u64,
    /// Points assigned to a centroid by the vectorized K-Means
    /// `assign_accumulate` kernel (flat dim-major scan) — zero on the
    /// record-at-a-time adapter, so tests can pin which path ran;
    /// `default` keeps BENCH_PR6/PR7 artifacts parseable.
    #[serde(default)]
    pub points_assigned_vectorized: u64,
    /// Sorted runs produced by the LSD `radix_sort_u64` kernel instead of
    /// a comparison sort (TeraSort merge, u64-keyed sort-combine runs);
    /// `default` keeps BENCH_PR6/PR7 artifacts parseable.
    #[serde(default)]
    pub radix_sort_runs: u64,
    /// Event slabs carried between streaming source/task/sink in place of
    /// per-event channel sends — zero on the per-event runtime; `default`
    /// keeps BENCH_PR6/PR7 artifacts parseable.
    #[serde(default)]
    pub stream_batches: u64,
    /// Stage tasks a shared-pool worker took from another worker's
    /// deque (`ExecutorMode::SharedPool` only); `default` keeps
    /// BENCH_PR6/PR7 artifacts parseable.
    #[serde(default)]
    pub tasks_stolen: u64,
    /// Microseconds stage tasks spent queued in the shared pool before
    /// execution began; `default` keeps pre-existing artifacts
    /// parseable.
    #[serde(default)]
    pub queue_wait_micros: u64,
    /// Stage tasks whose queue wait is accumulated in
    /// `queue_wait_micros` (denominator for a mean wait); `default`
    /// keeps pre-existing artifacts parseable.
    #[serde(default)]
    pub queue_wait_tasks: u64,
    /// Cross-job fragment-cache reuses that passed checksum
    /// re-verification (distinct from `cache_hits`, the staged engine's
    /// block cache); `default` keeps pre-existing artifacts parseable.
    #[serde(default)]
    pub fragment_cache_hits: u64,
    /// Fragments this job's inserts evicted from the cross-job cache;
    /// `default` keeps pre-existing artifacts parseable.
    #[serde(default)]
    pub fragment_cache_evictions: u64,
    /// Streaming events that arrived behind their task's event-time
    /// frontier (out-of-order but not yet late); `default` keeps
    /// pre-existing artifacts parseable.
    #[serde(default)]
    pub watermark_lag_events: u64,
    /// Window results fired by watermark advances across all streaming
    /// tasks; `default` keeps pre-existing artifacts parseable.
    #[serde(default)]
    pub windows_emitted: u64,
    /// Streaming events dropped because they arrived behind the
    /// watermark (older than the allowance permits); `default` keeps
    /// pre-existing artifacts parseable.
    #[serde(default)]
    pub late_events_dropped: u64,
    /// Recovery counters (fault injection and its repair costs).
    pub recovery: RecoverySnapshot,
}

/// Point-in-time copy of the recovery counters, the per-run payload of the
/// `repro chaos` comparison axis (recovery cost under identical injected
/// faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySnapshot {
    /// Task kills and memory-pressure aborts the fault plan injected.
    pub injected_failures: u64,
    /// Straggler slowdowns the fault plan injected.
    pub injected_stragglers: u64,
    /// Failed attempts that were retried (both engines).
    pub task_retries: u64,
    /// Partitions recomputed from lineage (staged engine).
    pub partitions_recomputed: u64,
    /// Pipelined regions restarted from a checkpoint (pipelined engine).
    pub region_restarts: u64,
    /// Aligned checkpoints completed.
    pub checkpoints_taken: u64,
    /// Cumulative bytes snapshotted across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Speculative backup attempts launched against stragglers.
    pub speculative_launched: u64,
    /// Backup attempts that beat the straggling primary.
    pub speculative_wins: u64,
    /// Injected memory-pressure aborts (subset of `injected_failures`).
    pub memory_pressure_events: u64,
    /// Buffer-pool exhaustion events that forced an early merge-spill.
    pub pool_exhausted: u64,
    /// Tasks torn down by a job-level cancel (deadline or explicit);
    /// `default` keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub tasks_cancelled: u64,
    /// Batches digested at a shuffle-write, checkpoint store or source
    /// seal; `default` keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub batches_checksummed: u64,
    /// Verifications that failed — a shuffled batch, checkpoint snapshot
    /// or sealed source batch whose digest no longer matched; `default`
    /// keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Poisoned-partition recomputes the staged engine ran (and retries
    /// either engine spent) answering a detected corruption; `default`
    /// keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub integrity_recomputes: u64,
    /// Checkpoint snapshots the pipelined engine discarded as
    /// unverifiable before restarting from an older verified one;
    /// `default` keeps pre-existing JSON artifacts parseable.
    #[serde(default)]
    pub checkpoints_rejected: u64,
    /// Streaming tasks restored from a digest-verified checkpoint
    /// snapshot after a region restart; `default` keeps pre-existing
    /// JSON artifacts parseable.
    #[serde(default)]
    pub stream_checkpoints_restored: u64,
}

macro_rules! counter_api {
    ($($field:ident => $add:ident, $get:ident);* $(;)?) => {
        $(
            /// Adds to the counter.
            pub fn $add(&self, n: u64) {
                self.inner.$field.fetch_add(n, Ordering::Relaxed);
            }
            /// Reads the counter.
            pub fn $get(&self) -> u64 {
                self.inner.$field.load(Ordering::Relaxed)
            }
        )*
    };
}

impl EngineMetrics {
    /// Creates a fresh metrics handle.
    pub fn new() -> Self {
        Self::default()
    }

    counter_api! {
        records_read => add_records_read, records_read;
        records_shuffled => add_records_shuffled, records_shuffled;
        bytes_shuffled => add_bytes_shuffled, bytes_shuffled;
        bytes_spilled => add_bytes_spilled, bytes_spilled;
        spill_events => add_spill_events, spill_events;
        combine_input => add_combine_input, combine_input;
        combine_output => add_combine_output, combine_output;
        compute_calls => add_compute_calls, compute_calls;
        cache_hits => add_cache_hits, cache_hits;
        cache_misses => add_cache_misses, cache_misses;
        tasks_launched => add_tasks_launched, tasks_launched;
        iterations_run => add_iterations_run, iterations_run;
        backpressure_waits => add_backpressure_waits, backpressure_waits;
        messages_combined => add_messages_combined, messages_combined;
        batches_processed => add_batches_processed, batches_processed;
        rows_selected => add_rows_selected, rows_selected;
        points_assigned_vectorized => add_points_assigned_vectorized, points_assigned_vectorized;
        radix_sort_runs => add_radix_sort_runs, radix_sort_runs;
        stream_batches => add_stream_batches, stream_batches;
        tasks_stolen => add_tasks_stolen, tasks_stolen;
        queue_wait_micros => add_queue_wait_micros, queue_wait_micros;
        queue_wait_tasks => add_queue_wait_tasks, queue_wait_tasks;
        fragment_cache_hits => add_fragment_cache_hits, fragment_cache_hits;
        fragment_cache_evictions => add_fragment_cache_evictions, fragment_cache_evictions;
        watermark_lag_events => add_watermark_lag_events, watermark_lag_events;
        windows_emitted => add_windows_emitted, windows_emitted;
        late_events_dropped => add_late_events_dropped, late_events_dropped;
        injected_failures => add_injected_failures, injected_failures;
        injected_stragglers => add_injected_stragglers, injected_stragglers;
        task_retries => add_task_retries, task_retries;
        partitions_recomputed => add_partitions_recomputed, partitions_recomputed;
        region_restarts => add_region_restarts, region_restarts;
        checkpoints_taken => add_checkpoints_taken, checkpoints_taken;
        checkpoint_bytes => add_checkpoint_bytes, checkpoint_bytes;
        speculative_launched => add_speculative_launched, speculative_launched;
        speculative_wins => add_speculative_wins, speculative_wins;
        memory_pressure_events => add_memory_pressure_events, memory_pressure_events;
        pool_exhausted => add_pool_exhausted, pool_exhausted;
        tasks_cancelled => add_tasks_cancelled, tasks_cancelled;
        batches_checksummed => add_batches_checksummed, batches_checksummed;
        corruptions_detected => add_corruptions_detected, corruptions_detected;
        integrity_recomputes => add_integrity_recomputes, integrity_recomputes;
        checkpoints_rejected => add_checkpoints_rejected, checkpoints_rejected;
        stream_checkpoints_restored => add_stream_checkpoints_restored, stream_checkpoints_restored;
    }

    /// Copies every counter out as one serializable struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            records_read: self.records_read(),
            records_shuffled: self.records_shuffled(),
            bytes_shuffled: self.bytes_shuffled(),
            bytes_spilled: self.bytes_spilled(),
            spill_events: self.spill_events(),
            combine_input: self.combine_input(),
            combine_output: self.combine_output(),
            compute_calls: self.compute_calls(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            tasks_launched: self.tasks_launched(),
            iterations_run: self.iterations_run(),
            backpressure_waits: self.backpressure_waits(),
            messages_combined: self.messages_combined(),
            batches_processed: self.batches_processed(),
            rows_selected: self.rows_selected(),
            points_assigned_vectorized: self.points_assigned_vectorized(),
            radix_sort_runs: self.radix_sort_runs(),
            stream_batches: self.stream_batches(),
            tasks_stolen: self.tasks_stolen(),
            queue_wait_micros: self.queue_wait_micros(),
            queue_wait_tasks: self.queue_wait_tasks(),
            fragment_cache_hits: self.fragment_cache_hits(),
            fragment_cache_evictions: self.fragment_cache_evictions(),
            watermark_lag_events: self.watermark_lag_events(),
            windows_emitted: self.windows_emitted(),
            late_events_dropped: self.late_events_dropped(),
            recovery: self.recovery(),
        }
    }

    /// Copies the recovery counters out as one struct.
    pub fn recovery(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            injected_failures: self.injected_failures(),
            injected_stragglers: self.injected_stragglers(),
            task_retries: self.task_retries(),
            partitions_recomputed: self.partitions_recomputed(),
            region_restarts: self.region_restarts(),
            checkpoints_taken: self.checkpoints_taken(),
            checkpoint_bytes: self.checkpoint_bytes(),
            speculative_launched: self.speculative_launched(),
            speculative_wins: self.speculative_wins(),
            memory_pressure_events: self.memory_pressure_events(),
            pool_exhausted: self.pool_exhausted(),
            tasks_cancelled: self.tasks_cancelled(),
            batches_checksummed: self.batches_checksummed(),
            corruptions_detected: self.corruptions_detected(),
            integrity_recomputes: self.integrity_recomputes(),
            checkpoints_rejected: self.checkpoints_rejected(),
            stream_checkpoints_restored: self.stream_checkpoints_restored(),
        }
    }

    /// Map-side combine effectiveness: output/input record ratio, 1.0 when
    /// no combining happened.
    pub fn combine_ratio(&self) -> f64 {
        let input = self.combine_input();
        if input == 0 {
            1.0
        } else {
            self.combine_output() as f64 / input as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.add_records_shuffled(10);
        m.add_records_shuffled(5);
        assert_eq!(m.records_shuffled(), 15);
        assert_eq!(m.bytes_spilled(), 0);
    }

    #[test]
    fn clone_shares_state() {
        let m = EngineMetrics::new();
        let m2 = m.clone();
        m2.add_tasks_launched(3);
        assert_eq!(m.tasks_launched(), 3);
    }

    #[test]
    fn combine_ratio_defaults_to_one() {
        let m = EngineMetrics::new();
        assert_eq!(m.combine_ratio(), 1.0);
        m.add_combine_input(100);
        m.add_combine_output(10);
        assert!((m.combine_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = EngineMetrics::new();
        m.add_records_shuffled(12);
        m.add_backpressure_waits(3);
        m.add_region_restarts(2);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.records_shuffled, 12);
        assert_eq!(back.backpressure_waits, 3);
        assert_eq!(back.recovery.region_restarts, 2);
    }

    #[test]
    fn old_recovery_json_without_integrity_fields_still_parses() {
        // A pre-integrity artifact: none of the four new counters present.
        let old = r#"{
            "injected_failures": 2, "injected_stragglers": 1,
            "task_retries": 3, "partitions_recomputed": 2,
            "region_restarts": 0, "checkpoints_taken": 4,
            "checkpoint_bytes": 512, "speculative_launched": 1,
            "speculative_wins": 1, "memory_pressure_events": 0,
            "pool_exhausted": 0
        }"#;
        let back: RecoverySnapshot = serde_json::from_str(old).unwrap();
        assert_eq!(back.task_retries, 3);
        assert_eq!(back.batches_checksummed, 0);
        assert_eq!(back.corruptions_detected, 0);
        assert_eq!(back.integrity_recomputes, 0);
        assert_eq!(back.checkpoints_rejected, 0);
    }

    #[test]
    fn old_snapshot_json_without_sched_fields_still_parses() {
        // A BENCH_PR6/PR7-era snapshot: none of the five sched counters
        // present. Field-by-field round trip via a modern snapshot with
        // the sched counters zeroed.
        let m = EngineMetrics::new();
        m.add_records_shuffled(7);
        let snap = m.snapshot();
        let mut json = serde_json::to_string(&snap).unwrap();
        for gone in [
            "\"tasks_stolen\":0,",
            "\"queue_wait_micros\":0,",
            "\"queue_wait_tasks\":0,",
            "\"fragment_cache_hits\":0,",
            "\"fragment_cache_evictions\":0,",
        ] {
            assert!(json.contains(gone), "{json}");
            json = json.replace(gone, "");
        }
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.tasks_stolen, 0);
    }

    #[test]
    fn old_snapshot_json_without_columnar_hotpath_fields_still_parses() {
        // A BENCH_PR6/PR7-era snapshot: none of the three PR 10 hot-path
        // counters present.
        let m = EngineMetrics::new();
        m.add_batches_processed(4);
        let snap = m.snapshot();
        let mut json = serde_json::to_string(&snap).unwrap();
        for gone in [
            "\"points_assigned_vectorized\":0,",
            "\"radix_sort_runs\":0,",
            "\"stream_batches\":0,",
        ] {
            assert!(json.contains(gone), "{json}");
            json = json.replace(gone, "");
        }
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.points_assigned_vectorized, 0);
        assert_eq!(back.radix_sort_runs, 0);
        assert_eq!(back.stream_batches, 0);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = EngineMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add_compute_calls(1);
                    }
                });
            }
        });
        assert_eq!(m.compute_calls(), 8000);
    }
}
