//! RDD block cache with explicit persistence control.
//!
//! "Spark's users can control two very important aspects of the RDDs: the
//! persistence (i.e. in memory or disk based) and the partition scheme"
//! (§II-C) — and the paper credits exactly this control for Spark's Grep
//! advantage ("Spark can take more advantage of its persistence control over
//! the RDDs ... This important feature is missing in the current
//! implementation of Flink", §VI-B).
//!
//! The cache stores type-erased partition blocks keyed by
//! `(dataset id, partition index)` under a memory budget with LRU eviction;
//! [`StorageLevel::MemoryAndDisk`] demotes evicted blocks to a disk tier
//! instead of dropping them.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

/// Where a persisted dataset's blocks may live (Spark's StorageLevel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageLevel {
    /// Not persisted: recomputed from lineage on every use.
    None,
    /// Memory only; evicted blocks are lost (recompute).
    MemoryOnly,
    /// Memory first; evicted blocks demote to the disk tier.
    MemoryAndDisk,
    /// Straight to the disk tier.
    DiskOnly,
}

/// Key of one cached partition.
pub type BlockId = (usize, usize);

type Block = Arc<dyn Any + Send + Sync>;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Blocks served from memory.
    pub memory_hits: u64,
    /// Blocks served from the disk tier (slower in real life).
    pub disk_hits: u64,
    /// Lookups that found nothing (lineage recompute).
    pub misses: u64,
    /// Blocks evicted from memory.
    pub evictions: u64,
}

struct Entry {
    block: Block,
    bytes: u64,
    level: StorageLevel,
}

struct Inner {
    memory: HashMap<BlockId, Entry>,
    disk: HashMap<BlockId, Entry>,
    lru: VecDeque<BlockId>,
    memory_bytes: u64,
    stats: CacheStats,
}

/// Thread-safe block cache.
pub struct BlockCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl BlockCache {
    /// Creates a cache with the given memory budget (the
    /// `spark.storage.fraction` share of the executor heap).
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                memory: HashMap::new(),
                disk: HashMap::new(),
                lru: VecDeque::new(),
                memory_bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Inserts a block at the given storage level. `StorageLevel::None` is
    /// a no-op.
    pub fn put(&self, id: BlockId, block: Block, bytes: u64, level: StorageLevel) {
        if level == StorageLevel::None {
            return;
        }
        let mut inner = self.inner.lock();
        // Re-inserting an id (task retries and speculative backups put the
        // same block again) must replace the old entry, not double-count
        // its bytes or duplicate its LRU slot.
        if let Some(old) = inner.memory.remove(&id) {
            inner.memory_bytes -= old.bytes;
            inner.lru.retain(|b| *b != id);
        }
        if level == StorageLevel::DiskOnly {
            inner.disk.insert(
                id,
                Entry {
                    block,
                    bytes,
                    level,
                },
            );
            return;
        }
        // Memory tiers: evict LRU until it fits (or nothing is left).
        while inner.memory_bytes + bytes > self.capacity_bytes {
            let Some(victim) = inner.lru.pop_front() else {
                break;
            };
            if let Some(entry) = inner.memory.remove(&victim) {
                inner.memory_bytes -= entry.bytes;
                inner.stats.evictions += 1;
                if entry.level == StorageLevel::MemoryAndDisk {
                    inner.disk.insert(victim, entry);
                }
            }
        }
        if inner.memory_bytes + bytes > self.capacity_bytes {
            // Block alone exceeds the budget: bypass memory.
            if level == StorageLevel::MemoryAndDisk {
                inner.disk.insert(
                    id,
                    Entry {
                        block,
                        bytes,
                        level,
                    },
                );
            }
            return;
        }
        inner.memory_bytes += bytes;
        inner.lru.push_back(id);
        inner.memory.insert(
            id,
            Entry {
                block,
                bytes,
                level,
            },
        );
    }

    /// Looks a block up, refreshing LRU position on a memory hit.
    pub fn get(&self, id: BlockId) -> Option<Block> {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.memory.get(&id) {
            let block = Arc::clone(&entry.block);
            if let Some(pos) = inner.lru.iter().position(|&b| b == id) {
                inner.lru.remove(pos);
                inner.lru.push_back(id);
            }
            inner.stats.memory_hits += 1;
            return Some(block);
        }
        if let Some(block) = inner.disk.get(&id).map(|e| Arc::clone(&e.block)) {
            inner.stats.disk_hits += 1;
            return Some(block);
        }
        inner.stats.misses += 1;
        None
    }

    /// Drops every block of one dataset (Spark's `unpersist`).
    pub fn evict_dataset(&self, dataset_id: usize) {
        let mut inner = self.inner.lock();
        let victims: Vec<BlockId> = inner
            .memory
            .keys()
            .filter(|(d, _)| *d == dataset_id)
            .copied()
            .collect();
        for id in victims {
            if let Some(e) = inner.memory.remove(&id) {
                inner.memory_bytes -= e.bytes;
            }
            if let Some(pos) = inner.lru.iter().position(|&b| b == id) {
                inner.lru.remove(pos);
            }
        }
        inner.disk.retain(|(d, _), _| *d != dataset_id);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Live memory-tier bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.inner.lock().memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(v: Vec<u32>) -> Block {
        Arc::new(v)
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = BlockCache::new(1000);
        cache.put((1, 0), block_of(vec![1, 2, 3]), 100, StorageLevel::MemoryOnly);
        let b = cache.get((1, 0)).unwrap();
        let v = b.downcast_ref::<Vec<u32>>().unwrap();
        assert_eq!(v, &vec![1, 2, 3]);
        assert_eq!(cache.stats().memory_hits, 1);
        assert!(cache.get((1, 1)).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn repeated_put_of_same_block_does_not_double_count() {
        // Task retries and speculative backups re-put the block they
        // recomputed; accounting must not inflate.
        let cache = BlockCache::new(1000);
        for _ in 0..5 {
            cache.put((1, 0), block_of(vec![1, 2, 3]), 400, StorageLevel::MemoryOnly);
        }
        assert_eq!(cache.memory_bytes(), 400);
        // A second block still fits: no phantom occupancy, no evictions.
        cache.put((1, 1), block_of(vec![4]), 400, StorageLevel::MemoryOnly);
        assert!(cache.get((1, 0)).is_some());
        assert!(cache.get((1, 1)).is_some());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn storage_level_none_is_noop() {
        let cache = BlockCache::new(1000);
        cache.put((1, 0), block_of(vec![]), 10, StorageLevel::None);
        assert!(cache.get((1, 0)).is_none());
    }

    #[test]
    fn lru_evicts_oldest_memory_only_block() {
        let cache = BlockCache::new(250);
        cache.put((1, 0), block_of(vec![0]), 100, StorageLevel::MemoryOnly);
        cache.put((1, 1), block_of(vec![1]), 100, StorageLevel::MemoryOnly);
        // Touch block 0 so block 1 becomes the LRU victim.
        let _ = cache.get((1, 0));
        cache.put((1, 2), block_of(vec![2]), 100, StorageLevel::MemoryOnly);
        assert!(cache.get((1, 0)).is_some());
        assert!(cache.get((1, 1)).is_none(), "LRU victim must be gone");
        assert!(cache.get((1, 2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn memory_and_disk_demotes_instead_of_dropping() {
        let cache = BlockCache::new(150);
        cache.put((1, 0), block_of(vec![0]), 100, StorageLevel::MemoryAndDisk);
        cache.put((1, 1), block_of(vec![1]), 100, StorageLevel::MemoryAndDisk);
        // Block 0 was evicted to disk; still retrievable.
        assert!(cache.get((1, 0)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.disk_hits, 1);
    }

    #[test]
    fn oversized_block_bypasses_memory() {
        let cache = BlockCache::new(50);
        cache.put((1, 0), block_of(vec![0]), 100, StorageLevel::MemoryOnly);
        assert!(cache.get((1, 0)).is_none(), "does not fit, MemoryOnly drops");
        cache.put((1, 1), block_of(vec![1]), 100, StorageLevel::MemoryAndDisk);
        assert!(cache.get((1, 1)).is_some(), "MemoryAndDisk falls to disk");
        assert_eq!(cache.memory_bytes(), 0);
    }

    #[test]
    fn disk_only_never_touches_memory() {
        let cache = BlockCache::new(1000);
        cache.put((2, 0), block_of(vec![9]), 100, StorageLevel::DiskOnly);
        assert_eq!(cache.memory_bytes(), 0);
        assert!(cache.get((2, 0)).is_some());
        assert_eq!(cache.stats().disk_hits, 1);
    }

    #[test]
    fn evict_dataset_removes_all_tiers() {
        let cache = BlockCache::new(1000);
        cache.put((3, 0), block_of(vec![1]), 10, StorageLevel::MemoryOnly);
        cache.put((3, 1), block_of(vec![2]), 10, StorageLevel::DiskOnly);
        cache.put((4, 0), block_of(vec![3]), 10, StorageLevel::MemoryOnly);
        cache.evict_dataset(3);
        assert!(cache.get((3, 0)).is_none());
        assert!(cache.get((3, 1)).is_none());
        assert!(cache.get((4, 0)).is_some());
    }
}
