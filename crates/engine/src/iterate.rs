//! Native iteration operators (Flink §II-C).
//!
//! "Flink executes iterations as cyclic data flows ... a data flow program
//! (and all its operators) is scheduled just once and the data is fed back
//! from the tail of an iteration to its head. Since operators are just
//! scheduled once, they can maintain a state over all iterations."
//!
//! Two runtimes:
//!
//! - [`bulk_iterate`] — the K-Means shape: per-round broadcast state,
//!   per-partition partial aggregation, merge at the iteration barrier
//!   (Flink's `BulkIteration` + `withBroadcastSet` + reduce);
//! - [`vertex_centric`] — the Gelly shape for Page Rank / Connected
//!   Components, in [`IterationMode::Bulk`] (every vertex active every
//!   round) or [`IterationMode::Delta`] (only message recipients active;
//!   the **solution set** lives in worker-local state and, like Flink's
//!   CoGroup-managed solution set, *must fit in memory* — exceeding the
//!   configured budget aborts with [`IterationError::SolutionSetOom`],
//!   reproducing Table VII's failures).
//!
//! Workers are OS threads deployed **once**; the `tasks_launched` metric
//! therefore stays at the worker count no matter how many rounds run — the
//! observable difference from the staged engine's loop unrolling.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crossbeam::channel::{bounded, Receiver, Sender};

use flowmark_dataflow::partitioner::fxhash;

use crate::faults::FaultPlan;
use crate::flink::FlinkEnv;
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::memory::BufferPool;
use crate::metrics::EngineMetrics;

/// Driver-side fault handling shared by both iteration runtimes: decides,
/// per superstep, whether to inject a straggler pause or a failure that
/// rewinds to the last checkpoint. Tracks per-round attempts so replay
/// always makes progress (probability kills fire on first tries only).
struct RoundFaults {
    plan: FaultPlan,
    stage: u64,
    attempts: HashMap<u32, u32>,
}

impl RoundFaults {
    fn new(plan: FaultPlan, stage: u64) -> Self {
        Self {
            plan,
            stage,
            attempts: HashMap::new(),
        }
    }

    /// Runs the pre-round injection sequence. Returns `true` when an
    /// injected failure fired and the caller must restore the last
    /// checkpoint and replay.
    fn before_round(&mut self, metrics: &EngineMetrics, round: u32) -> bool {
        if !self.plan.active() {
            return false;
        }
        if let Some(delay) = self.plan.round_straggler(self.stage, round) {
            metrics.add_injected_stragglers(1);
            std::thread::sleep(delay);
        }
        let attempt = self.attempts.entry(round).or_insert(0);
        if !self.plan.round_failure(self.stage, round, *attempt) {
            return false;
        }
        *attempt += 1;
        metrics.add_injected_failures(1);
        assert!(
            *attempt < self.plan.max_attempts(),
            "iteration round {round} failed {attempt} times"
        );
        metrics.add_task_retries(1);
        metrics.add_region_restarts(1);
        std::thread::sleep(self.plan.backoff(*attempt));
        true
    }
}

/// Errors surfaced by the iteration runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterationError {
    /// The delta-iteration solution set outgrew its memory budget
    /// ("Flink's execution ... failed because of the CoGroup operator's
    /// internal implementation which computes the solution set in memory",
    /// §VI-E).
    SolutionSetOom {
        /// Entries the solution set needed.
        needed: usize,
        /// Entries the budget allows.
        budget: usize,
    },
}

impl std::fmt::Display for IterationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IterationError::SolutionSetOom { needed, budget } => write!(
                f,
                "solution set of {needed} entries exceeds in-memory budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for IterationError {}

/// Bulk iteration with broadcast state: workers scheduled once, `rounds`
/// supersteps of `step` per partition, partials merged with `merge`.
pub fn bulk_iterate<T, S>(
    env: &FlinkEnv,
    partitions: Vec<Vec<T>>,
    initial: S,
    rounds: u32,
    step: impl Fn(&S, &[T]) -> S + Send + Sync,
    merge: impl Fn(S, S) -> S,
    finalize: impl Fn(S) -> S,
) -> S
where
    T: Send + Sync,
    S: Clone + Send + Sync,
{
    assert!(rounds > 0, "need at least one round");
    let n = partitions.len();
    if n == 0 {
        return initial;
    }
    let step = &step;
    std::thread::scope(|scope| {
        // Deploy workers once with a feedback channel each.
        let mut to_workers: Vec<Sender<S>> = Vec::with_capacity(n);
        let (results_tx, results_rx) = bounded::<(usize, S)>(n);
        for (i, part) in partitions.iter().enumerate() {
            let (tx, rx): (Sender<S>, Receiver<S>) = bounded(1);
            to_workers.push(tx);
            let results_tx = results_tx.clone();
            let env2 = env.clone();
            scope.spawn(move || {
                env2.metrics().add_tasks_launched(1);
                // State maintained across all iterations (scheduled once).
                for state in rx.iter() {
                    let partial = step(&state, part);
                    results_tx.send((i, partial)).expect("driver alive");
                }
            });
        }
        drop(results_tx);
        let plan = env.faults().clone();
        let stage = env.next_stage_id();
        let interval = plan.checkpoint_interval_rounds();
        let mut faults = RoundFaults::new(plan, stage);
        // Superstep checkpoint: (completed rounds, broadcast state). The
        // state is the whole inter-round dataflow, so restoring it replays
        // the iteration exactly from that barrier.
        let mut checkpoint: (u32, S) = (0, initial.clone());
        let mut state = initial;
        let mut round = 0u32;
        while round < rounds {
            if faults.before_round(env.metrics(), round) {
                (round, state) = (checkpoint.0, checkpoint.1.clone());
                continue;
            }
            for tx in &to_workers {
                tx.send(state.clone()).expect("worker alive");
            }
            let mut partials: Vec<Option<S>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, s) = results_rx.recv().expect("workers alive");
                partials[i] = Some(s);
            }
            // Deterministic merge order regardless of arrival order.
            state = finalize(
                partials
                    .into_iter()
                    .map(|p| p.expect("every worker reported"))
                    .reduce(&merge)
                    .expect("n > 0"),
            );
            env.metrics().add_iterations_run(1);
            round += 1;
            if interval > 0 && round % interval == 0 {
                checkpoint = (round, state.clone());
                env.metrics().add_checkpoints_taken(1);
                env.metrics()
                    .add_checkpoint_bytes(std::mem::size_of::<S>() as u64);
            }
        }
        drop(to_workers); // shut workers down
        state
    })
}

/// One partition's adjacency in CSR (compressed sparse row) form: vertex
/// `i` of the partition owns out-neighbours
/// `targets[offsets[i]..offsets[i + 1]]`. Two flat arrays replace the old
/// per-vertex `Vec<u64>` lists, so a superstep walks contiguous memory
/// instead of chasing one heap allocation per vertex.
#[derive(Debug, Clone)]
pub struct CsrPart {
    /// Owned vertex ids, ascending; position = dense index.
    pub vertex_ids: Vec<u64>,
    /// CSR row starts into `targets`; `len == vertex_ids.len() + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated out-neighbour lists, edge-list order per source.
    pub targets: Vec<u64>,
    /// Vertex id → dense index dictionary for message delivery.
    index: FxHashMap<u64, u32>,
}

impl CsrPart {
    /// Vertices owned by this partition.
    pub fn len(&self) -> usize {
        self.vertex_ids.len()
    }

    /// True when the partition owns no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_ids.is_empty()
    }

    /// Out-neighbours of the vertex at dense index `i`.
    pub fn neighbours(&self, i: usize) -> &[u64] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Dense index of a vertex id, when owned here.
    pub fn dense_index(&self, vertex: u64) -> Option<u32> {
        self.index.get(&vertex).copied()
    }
}

/// A hash-partitioned CSR adjacency representation.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    /// Per-partition CSR adjacency.
    pub parts: Vec<CsrPart>,
}

impl PartitionedGraph {
    /// Builds the partitioned CSR out-adjacency from an edge list in two
    /// passes: degree count, then cursor fill. Vertices that appear only
    /// as targets get an empty row so that vertex programs see them.
    /// Every map and array is pre-sized from the known edge/vertex counts.
    pub fn from_edges(edges: &[(u64, u64)], partitions: usize) -> Self {
        assert!(partitions > 0);
        // Pass 1: out-degrees (sinks registered at degree 0).
        let mut deg: FxHashMap<u64, u32> = fx_map_with_capacity(edges.len() * 2);
        for &(s, t) in edges {
            *deg.entry(s).or_insert(0) += 1;
            deg.entry(t).or_insert(0);
        }
        let mut ids: Vec<u64> = Vec::with_capacity(deg.len());
        ids.extend(deg.keys().copied());
        ids.sort_unstable();
        // Distribute in ascending id order so each partition's vertex list
        // comes out sorted (dense index order = id order).
        let per_part = ids.len() / partitions + 1;
        let mut parts: Vec<CsrPart> = (0..partitions)
            .map(|_| CsrPart {
                vertex_ids: Vec::with_capacity(per_part),
                offsets: Vec::with_capacity(per_part + 1),
                targets: Vec::new(),
                index: fx_map_with_capacity(per_part),
            })
            .collect();
        for &v in &ids {
            let p = &mut parts[Self::owner(v, partitions)];
            p.index.insert(v, p.vertex_ids.len() as u32);
            p.vertex_ids.push(v);
        }
        // Offsets: per-partition prefix sums over the out-degrees.
        for p in &mut parts {
            p.offsets.push(0);
            let mut total = 0u32;
            for &v in &p.vertex_ids {
                total += deg[&v];
                p.offsets.push(total);
            }
            p.targets = vec![0; total as usize];
        }
        // Pass 2: place targets with per-row write cursors, preserving the
        // edge-list order per source (same adjacency order as before).
        let mut cursors: Vec<Vec<u32>> = parts
            .iter()
            .map(|p| p.offsets[..p.len()].to_vec())
            .collect();
        for &(s, t) in edges {
            let pi = Self::owner(s, partitions);
            let row = parts[pi].index[&s] as usize;
            let c = &mut cursors[pi][row];
            parts[pi].targets[*c as usize] = t;
            *c += 1;
        }
        Self { parts }
    }

    /// Which partition owns a vertex.
    pub fn owner(vertex: u64, partitions: usize) -> usize {
        (fxhash(&vertex) % partitions as u64) as usize
    }

    /// Total vertex count.
    pub fn vertex_count(&self) -> usize {
        self.parts.iter().map(CsrPart::len).sum()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Out-degree of every vertex, read straight off the CSR offsets
    /// (the degrees `from_edges` already computed).
    pub fn out_degrees(&self) -> HashMap<u64, u64> {
        let mut out: HashMap<u64, u64> = HashMap::with_capacity(self.vertex_count());
        for p in &self.parts {
            for (i, &v) in p.vertex_ids.iter().enumerate() {
                out.insert(v, (p.offsets[i + 1] - p.offsets[i]) as u64);
            }
        }
        out
    }
}

/// Bulk vs delta vertex-centric execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationMode {
    /// All vertices run every superstep.
    Bulk,
    /// Only vertices with incoming messages run; terminates early when no
    /// messages flow. `solution_set_budget` caps the in-memory solution
    /// set (entries) — `None` means unbounded.
    Delta {
        /// Max solution-set entries held in memory.
        solution_set_budget: Option<usize>,
    },
}

/// One vertex's compute step: current value, incoming messages and
/// out-neighbours in; new value (plus whether it changed) and outgoing
/// `(target, message)` pairs out.
pub type VertexCompute<VV, M> =
    dyn Fn(u64, &VV, &[M], &[u64]) -> (VV, bool, Vec<(u64, M)>) + Send + Sync;

/// An associative, commutative message combiner (Pregel's `Combiner`):
/// folds two messages bound for the same vertex into one *before* they
/// cross the channel. `sum` for Page Rank, `min` for CC/SSSP.
pub type MessageCombiner<M> = fn(M, M) -> M;

/// Runs a vertex-centric iteration without a message combiner; see
/// [`vertex_centric_with_combiner`].
pub fn vertex_centric<VV, M>(
    env: &FlinkEnv,
    graph: &PartitionedGraph,
    init: impl Fn(u64, &[u64]) -> VV + Send + Sync,
    compute: &VertexCompute<VV, M>,
    max_rounds: u32,
    mode: IterationMode,
) -> Result<HashMap<u64, VV>, IterationError>
where
    VV: Clone + Send + Sync,
    M: Clone + Send + Sync,
{
    vertex_centric_with_combiner(env, graph, init, compute, None, max_rounds, mode)
}

/// Runs a vertex-centric iteration over a partitioned CSR graph.
///
/// Workers (one per partition) are deployed once and keep their vertex
/// values — the solution set — as a flat `Vec` indexed by the CSR dense
/// id. Message routing happens at a per-round barrier (Flink's iteration
/// sync, the "Sync Bulk Iteration" span of Fig 10); all superstep buffers
/// circulate through [`BufferPool`]s so steady-state rounds allocate
/// nothing.
///
/// When `combiner` is given, each worker pre-combines its outgoing
/// messages per destination vertex in per-destination-partition outboxes
/// before they cross the channel, and the messages eliminated are counted
/// in the `messages_combined` metric.
///
/// Returns the final vertex values, or [`IterationError::SolutionSetOom`]
/// when a delta iteration's solution set exceeds its budget.
pub fn vertex_centric_with_combiner<VV, M>(
    env: &FlinkEnv,
    graph: &PartitionedGraph,
    init: impl Fn(u64, &[u64]) -> VV + Send + Sync,
    compute: &VertexCompute<VV, M>,
    combiner: Option<MessageCombiner<M>>,
    max_rounds: u32,
    mode: IterationMode,
) -> Result<HashMap<u64, VV>, IterationError>
where
    VV: Clone + Send + Sync,
    M: Clone + Send + Sync,
{
    let n = graph.partitions();
    if let IterationMode::Delta {
        solution_set_budget: Some(budget),
    } = mode
    {
        let needed = graph.vertex_count();
        if needed > budget {
            return Err(IterationError::SolutionSetOom { needed, budget });
        }
    }

    // Messages exchanged between driver and workers each superstep.
    enum ToWorker<M> {
        Round(Vec<(u64, M)>),
        /// Checkpoint the worker-local solution set (kept worker-side, like
        /// Flink snapshotting operator state to a state backend).
        Snapshot,
        /// Rewind the solution set to the last snapshot.
        Restore,
        Finish,
    }
    struct FromWorker<M, VV> {
        part: usize,
        /// Outgoing messages, pre-routed per destination partition.
        outgoing: Vec<Vec<(u64, M)>>,
        values: Option<Vec<(u64, VV)>>,
    }

    // Superstep buffers circulate driver ↔ workers through these pools:
    // `msg_pool` recycles the flat `(target, message)` vectors, `box_pool`
    // the per-destination carriers.
    let msg_pool: BufferPool<(u64, M)> = BufferPool::new(n * (n + 2));
    let box_pool: BufferPool<Vec<(u64, M)>> = BufferPool::new(n);
    let msg_pool = &msg_pool;
    let box_pool = &box_pool;

    let init = &init;
    std::thread::scope(|scope| {
        let mut to_workers: Vec<Sender<ToWorker<M>>> = Vec::with_capacity(n);
        let (from_tx, from_rx) = bounded::<FromWorker<M, VV>>(n);
        for (p, part) in graph.parts.iter().enumerate() {
            let (tx, rx): (Sender<ToWorker<M>>, _) = bounded(1);
            to_workers.push(tx);
            let from_tx = from_tx.clone();
            let env2 = env.clone();
            scope.spawn(move || {
                env2.metrics().add_tasks_launched(1);
                let nv = part.len();
                // Worker-local solution set, maintained across rounds:
                // a dense array indexed by the CSR dense id.
                let mut values: Vec<VV> = part
                    .vertex_ids
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| init(v, part.neighbours(i)))
                    .collect();
                let is_delta = matches!(mode, IterationMode::Delta { .. });
                let mut first_round = true;
                // Last snapshot of (solution set, first-round flag); armed
                // with the initial state so a failure before any checkpoint
                // restarts the iteration from scratch.
                let mut saved = env2
                    .faults()
                    .active()
                    .then(|| (values.clone(), first_round));
                // Dense inboxes, allocated once; each slot is cleared right
                // after its vertex computes, so capacity carries over and
                // steady-state supersteps stay allocation-free.
                let mut inbox: Vec<Vec<M>> = (0..nv).map(|_| Vec::new()).collect();
                // Sender-side combining state: one pre-combine map per
                // destination partition, drained (capacity kept) per round.
                let mut combine_boxes: Vec<FxHashMap<u64, M>> =
                    (0..if combiner.is_some() { n } else { 0 })
                        .map(|_| FxHashMap::default())
                        .collect();
                for msg in rx.iter() {
                    let mut incoming = match msg {
                        ToWorker::Round(m) => m,
                        ToWorker::Snapshot => {
                            env2.metrics().add_checkpoints_taken(1);
                            // Byte-accounted as logical (id, value) entries,
                            // exactly like the old map-backed solution set,
                            // so Table VII budgets are unchanged.
                            env2.metrics().add_checkpoint_bytes(
                                (values.len() * std::mem::size_of::<(u64, VV)>()) as u64,
                            );
                            saved = Some((values.clone(), first_round));
                            continue;
                        }
                        ToWorker::Restore => {
                            let (v, f) = saved.clone().expect("snapshot armed at start");
                            values = v;
                            first_round = f;
                            continue;
                        }
                        ToWorker::Finish => break,
                    };
                    // Deliver into the dense inbox slots.
                    for (v, m) in incoming.drain(..) {
                        let i = part.index[&v] as usize;
                        inbox[i].push(m);
                    }
                    msg_pool.put(incoming);
                    let mut outgoing: Vec<Vec<(u64, M)>> = box_pool.take(n);
                    for _ in 0..n {
                        outgoing.push(msg_pool.take(0));
                    }
                    let mut raw_sent = 0u64;
                    // Dense-index order == ascending vertex-id order.
                    for i in 0..nv {
                        let active = !is_delta || first_round || !inbox[i].is_empty();
                        if !active {
                            continue;
                        }
                        let v = part.vertex_ids[i];
                        let (new_value, changed, out) =
                            compute(v, &values[i], &inbox[i], part.neighbours(i));
                        inbox[i].clear();
                        if changed || !is_delta {
                            values[i] = new_value;
                        }
                        if changed || !is_delta || first_round {
                            if let Some(c) = combiner {
                                raw_sent += out.len() as u64;
                                for (t, m) in out {
                                    let dest = PartitionedGraph::owner(t, n);
                                    match combine_boxes[dest].entry(t) {
                                        Entry::Occupied(mut e) => {
                                            let prev = e.get().clone();
                                            e.insert(c(prev, m));
                                        }
                                        Entry::Vacant(e) => {
                                            e.insert(m);
                                        }
                                    }
                                }
                            } else {
                                for (t, m) in out {
                                    outgoing[PartitionedGraph::owner(t, n)].push((t, m));
                                }
                            }
                        }
                    }
                    if combiner.is_some() {
                        let mut combined_sent = 0u64;
                        for (dest, cbox) in combine_boxes.iter_mut().enumerate() {
                            combined_sent += cbox.len() as u64;
                            outgoing[dest].extend(cbox.drain());
                        }
                        env2.metrics()
                            .add_messages_combined(raw_sent - combined_sent);
                    }
                    first_round = false;
                    from_tx
                        .send(FromWorker {
                            part: p,
                            outgoing,
                            values: None,
                        })
                        .expect("driver alive");
                }
                // Final value dump.
                let dump: Vec<(u64, VV)> =
                    part.vertex_ids.iter().copied().zip(values).collect();
                from_tx
                    .send(FromWorker {
                        part: p,
                        outgoing: Vec::new(),
                        values: Some(dump),
                    })
                    .expect("driver alive");
            });
        }
        drop(from_tx);

        // Superstep loop: route messages at the barrier.
        let plan = env.faults().clone();
        let stage = env.next_stage_id();
        let interval = plan.checkpoint_interval_rounds();
        let mut faults = RoundFaults::new(plan, stage);
        // Driver-side half of the checkpoint: (completed rounds, routed but
        // undelivered messages). The worker-side half is the solution set.
        let mut checkpoint: (u32, Vec<Vec<(u64, M)>>) =
            (0, (0..n).map(|_| Vec::new()).collect());
        let mut pending: Vec<Vec<(u64, M)>> = (0..n).map(|_| msg_pool.take(0)).collect();
        // Arrival slots, reused every round so worker outputs always merge
        // in partition order (deterministic routing) without reallocating.
        let mut arrived: Vec<Option<Vec<Vec<(u64, M)>>>> = (0..n).map(|_| None).collect();
        let mut round = 0u32;
        while round < max_rounds {
            let is_delta = matches!(mode, IterationMode::Delta { .. });
            let total_pending: usize = pending.iter().map(Vec::len).sum();
            if is_delta && round > 0 && total_pending == 0 {
                break; // delta convergence: nothing changed
            }
            if faults.before_round(env.metrics(), round) {
                // Injected superstep failure: rewind both halves of the
                // checkpoint and replay from that barrier.
                for tx in &to_workers {
                    tx.send(ToWorker::Restore).expect("worker alive");
                }
                round = checkpoint.0;
                pending = checkpoint.1.clone();
                continue;
            }
            for (p, tx) in to_workers.iter().enumerate() {
                let buf = std::mem::replace(&mut pending[p], msg_pool.take(0));
                tx.send(ToWorker::Round(buf)).expect("worker alive");
            }
            for _ in 0..n {
                let out = from_rx.recv().expect("workers alive");
                debug_assert!(out.values.is_none());
                arrived[out.part] = Some(out.outgoing);
            }
            for slot in &mut arrived {
                let mut boxes = slot.take().expect("every worker reported");
                for (dest, mut buf) in boxes.drain(..).enumerate() {
                    pending[dest].append(&mut buf);
                    msg_pool.put(buf);
                }
                box_pool.put(boxes);
            }
            env.metrics().add_iterations_run(1);
            round += 1;
            if interval > 0 && round % interval == 0 {
                for tx in &to_workers {
                    tx.send(ToWorker::Snapshot).expect("worker alive");
                }
                checkpoint = (round, pending.clone());
            }
        }
        for tx in &to_workers {
            tx.send(ToWorker::Finish).expect("worker alive");
        }
        drop(to_workers);
        let mut result: HashMap<u64, VV> = HashMap::with_capacity(graph.vertex_count());
        for _ in 0..n {
            let out = from_rx.recv().expect("workers alive");
            result.extend(out.values.expect("final dump"));
        }
        Ok(result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_iterate_converges_like_a_fixpoint() {
        // x_{n+1} = mean of (data + x_n) pulls the state to data mean + x*.
        let env = FlinkEnv::new(4);
        let data: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0], vec![]];
        let result = bulk_iterate(
            &env,
            data,
            0.0_f64,
            20,
            |s, part| part.iter().map(|x| x + s).sum::<f64>(),
            |a, b| a + b,
            |s| s,
        );
        // Fixpoint of s = 15 + 5s has no finite solution; just assert the
        // recurrence applied exactly 20 times: s_n = 15 * (5^n - 1) / 4.
        let expect = 15.0 * (5f64.powi(20) - 1.0) / 4.0;
        assert!((result - expect).abs() / expect < 1e-12);
        assert_eq!(env.metrics().iterations_run(), 20);
    }

    #[test]
    fn bulk_iterate_schedules_workers_once() {
        let env = FlinkEnv::new(4);
        let data: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
        let before = env.metrics().tasks_launched();
        let _ = bulk_iterate(&env, data, 0u64, 10, |s, p| s + p.len() as u64, |a, b| a + b, |s| s);
        // 10 rounds, but only 4 worker deployments (scheduled once).
        assert_eq!(env.metrics().tasks_launched() - before, 4);
    }

    #[test]
    fn bulk_iterate_empty_partitions() {
        let env = FlinkEnv::new(2);
        let out = bulk_iterate(&env, Vec::<Vec<u32>>::new(), 7u32, 3, |s, _| *s, |a, _| a, |s| s);
        assert_eq!(out, 7);
    }

    fn line_graph(n: u64) -> Vec<(u64, u64)> {
        (0..n - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn partitioned_graph_includes_sink_vertices() {
        let g = PartitionedGraph::from_edges(&line_graph(5), 3);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.partitions(), 3);
    }

    /// Connected components by label propagation: value = component id.
    fn cc_compute() -> Box<VertexCompute<u64, u64>> {
        Box::new(|v, value, msgs, ns| {
            let candidate = msgs.iter().copied().min().unwrap_or(*value).min(*value);
            let changed = candidate < *value;
            let out = if changed || msgs.is_empty() {
                // First round (no messages) or improvement: notify others.
                ns.iter().map(|&t| (t, candidate.min(v))).collect()
            } else {
                Vec::new()
            };
            (candidate, changed, out)
        })
    }

    #[test]
    fn vertex_centric_bulk_cc_on_two_components() {
        let env = FlinkEnv::new(3);
        // Component A: 0-1-2, component B: 10-11.
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 1), (10, 11), (11, 10)];
        let g = PartitionedGraph::from_edges(&edges, 3);
        let values = vertex_centric(
            &env,
            &g,
            |v, _| v,
            &*cc_compute(),
            20,
            IterationMode::Bulk,
        )
        .unwrap();
        assert_eq!(values[&0], 0);
        assert_eq!(values[&1], 0);
        assert_eq!(values[&2], 0);
        assert_eq!(values[&10], 10);
        assert_eq!(values[&11], 10);
    }

    #[test]
    fn vertex_centric_delta_matches_bulk() {
        let env = FlinkEnv::new(4);
        // An undirected 8-cycle plus an isolated pair.
        let mut edges: Vec<(u64, u64)> = (0..8).flat_map(|i| {
            let j = (i + 1) % 8;
            [(i, j), (j, i)]
        })
        .collect();
        edges.push((100, 101));
        edges.push((101, 100));
        let g = PartitionedGraph::from_edges(&edges, 4);
        let bulk = vertex_centric(&env, &g, |v, _| v, &*cc_compute(), 30, IterationMode::Bulk)
            .unwrap();
        let delta = vertex_centric(
            &env,
            &g,
            |v, _| v,
            &*cc_compute(),
            30,
            IterationMode::Delta {
                solution_set_budget: None,
            },
        )
        .unwrap();
        assert_eq!(bulk, delta);
        assert!(bulk.iter().filter(|(v, _)| **v < 100).all(|(_, c)| *c == 0));
        assert_eq!(bulk[&100], 100);
    }

    #[test]
    fn delta_terminates_early_when_converged() {
        let env = FlinkEnv::new(2);
        let edges = vec![(0, 1), (1, 0)];
        let g = PartitionedGraph::from_edges(&edges, 2);
        let before = env.metrics().iterations_run();
        let _ = vertex_centric(
            &env,
            &g,
            |v, _| v,
            &*cc_compute(),
            1000,
            IterationMode::Delta {
                solution_set_budget: None,
            },
        )
        .unwrap();
        let rounds = env.metrics().iterations_run() - before;
        assert!(rounds < 10, "delta ran {rounds} rounds on a 2-cycle");
    }

    #[test]
    fn delta_solution_set_oom_reproduces_table_vii() {
        let env = FlinkEnv::new(2);
        let edges: Vec<(u64, u64)> = (0..100).map(|i| (i, (i + 1) % 100)).collect();
        let g = PartitionedGraph::from_edges(&edges, 2);
        let err = vertex_centric(
            &env,
            &g,
            |v, _| v,
            &*cc_compute(),
            10,
            IterationMode::Delta {
                solution_set_budget: Some(50),
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            IterationError::SolutionSetOom {
                needed: 100,
                budget: 50
            }
        );
    }

    #[test]
    fn bulk_iterate_replays_failed_round_from_checkpoint() {
        use crate::faults::FaultConfig;
        // Kill round 3's first attempt (stage 0: the iteration allocates the
        // env's first stage id). With checkpoints every 2 rounds the restore
        // point is round 2, and the replay must land on the exact fault-free
        // trajectory.
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            kill_list: vec![(0, 3, 0)],
            checkpoint_interval_rounds: 2,
            backoff_base: std::time::Duration::from_micros(100),
            ..FaultConfig::default()
        });
        let env = FlinkEnv::with_faults(4, plan);
        let data: Vec<Vec<u64>> = (0..4).map(|i| vec![i, i + 1]).collect();
        let step = |s: &u64, part: &[u64]| s + part.iter().sum::<u64>();
        let faulted = bulk_iterate(&env, data.clone(), 0u64, 6, step, |a, b| a + b, |s| s);
        let clean = bulk_iterate(&FlinkEnv::new(4), data, 0u64, 6, step, |a, b| a + b, |s| s);
        assert_eq!(faulted, clean);
        let rec = env.metrics().recovery();
        assert_eq!(rec.injected_failures, 1);
        assert_eq!(rec.region_restarts, 1);
        assert!(rec.checkpoints_taken >= 1);
        // Rounds 2..3 replayed once: 6 clean rounds + 1 replayed.
        assert_eq!(env.metrics().iterations_run(), 7);
    }

    #[test]
    fn vertex_centric_restores_solution_set_from_snapshot() {
        use crate::faults::FaultConfig;
        let edges: Vec<(u64, u64)> = (0..40).flat_map(|i| {
            let j = (i + 1) % 40;
            [(i, j), (j, i)]
        })
        .collect();
        let g = PartitionedGraph::from_edges(&edges, 4);
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            kill_list: vec![(0, 3, 0)],
            checkpoint_interval_rounds: 2,
            backoff_base: std::time::Duration::from_micros(100),
            ..FaultConfig::default()
        });
        let env = FlinkEnv::with_faults(4, plan);
        let faulted =
            vertex_centric(&env, &g, |v, _| v, &*cc_compute(), 60, IterationMode::Bulk).unwrap();
        let clean = vertex_centric(
            &FlinkEnv::new(4),
            &g,
            |v, _| v,
            &*cc_compute(),
            60,
            IterationMode::Bulk,
        )
        .unwrap();
        assert_eq!(faulted, clean);
        assert!(faulted.values().all(|c| *c == 0), "one 40-cycle, one component");
        let rec = env.metrics().recovery();
        assert_eq!(rec.injected_failures, 1);
        assert_eq!(rec.region_restarts, 1);
        assert!(rec.checkpoints_taken >= 4, "4 workers × ≥1 snapshot each");
    }

    #[test]
    fn vertex_centric_schedules_workers_once() {
        let env = FlinkEnv::new(4);
        let edges: Vec<(u64, u64)> = (0..50).map(|i| (i, (i + 1) % 50)).collect();
        let g = PartitionedGraph::from_edges(&edges, 4);
        let before = env.metrics().tasks_launched();
        let _ = vertex_centric(&env, &g, |v, _| v, &*cc_compute(), 15, IterationMode::Bulk)
            .unwrap();
        assert_eq!(env.metrics().tasks_launched() - before, 4);
    }
}
