//! A Gelly-like graph algorithm library over the vertex-centric runtime.
//!
//! The paper evaluates graph workloads through each framework's graph
//! library (Gelly on Flink, GraphX on Spark, §III). This module is the
//! Gelly-equivalent layer: ready-made algorithms expressed as vertex
//! programs on [`crate::iterate::vertex_centric`], so downstream users get
//! graph analytics without writing supersteps by hand. (The paper's two
//! algorithms, Page Rank and Connected Components, live in
//! `flowmark-workloads`; this module adds the neighbouring algorithms a
//! graph library ships.)

use std::collections::HashMap;

use crate::flink::FlinkEnv;
use crate::iterate::{
    vertex_centric_with_combiner, IterationError, IterationMode, PartitionedGraph,
};

/// Out-degree of every vertex (Gelly's `outDegrees`, used by Page Rank's
/// setup phase). Thin wrapper over the degrees CSR construction already
/// computes — see [`PartitionedGraph::out_degrees`].
pub fn out_degrees(edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    PartitionedGraph::from_edges(edges, 1).out_degrees()
}

/// Single-source shortest paths on an unweighted directed graph, as a
/// delta-style vertex-centric iteration: a vertex relaxes when a shorter
/// distance arrives and notifies its out-neighbours.
///
/// Returns `u64::MAX` for unreachable vertices.
pub fn sssp(
    env: &FlinkEnv,
    edges: &[(u64, u64)],
    source: u64,
    partitions: usize,
    max_rounds: u32,
) -> Result<HashMap<u64, u64>, IterationError> {
    let graph = PartitionedGraph::from_edges(edges, partitions);
    let values = vertex_centric_with_combiner(
        env,
        &graph,
        |v, _| if v == source { 0u64 } else { u64::MAX },
        &move |_v, dist: &u64, msgs: &[u64], ns: &[u64]| {
            let candidate = msgs.iter().copied().min().map_or(*dist, |m| m.min(*dist));
            let changed = candidate < *dist;
            // On the first superstep only the source scatters.
            let should_scatter = changed || (msgs.is_empty() && candidate == 0);
            let out = if should_scatter && candidate != u64::MAX {
                ns.iter().map(|&t| (t, candidate + 1)).collect()
            } else {
                Vec::new()
            };
            (candidate, changed, out)
        },
        // Distances fold with `min`: combine before the channel.
        Some(u64::min),
        max_rounds,
        IterationMode::Delta {
            solution_set_budget: None,
        },
    )?;
    Ok(values)
}

/// Reference BFS used to validate [`sssp`].
pub fn bfs_oracle(edges: &[(u64, u64)], source: u64) -> HashMap<u64, u64> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(s, t) in edges {
        adj.entry(s).or_default().push(t);
        adj.entry(t).or_default();
    }
    let mut dist: HashMap<u64, u64> = adj.keys().map(|&v| (v, u64::MAX)).collect();
    if !dist.contains_key(&source) {
        return dist;
    }
    dist.insert(source, 0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if let Some(ns) = adj.get(&v) {
            for &t in ns {
                if dist[&t] == u64::MAX {
                    dist.insert(t, d + 1);
                    queue.push_back(t);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Vec<(u64, u64)> {
        // 0 → 1 → 3, 0 → 2 → 3 → 4; 9 isolated via self-reference-free entry.
        vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (9, 9)]
    }

    #[test]
    fn out_degrees_counts_sources_and_registers_sinks() {
        let d = out_degrees(&diamond());
        assert_eq!(d[&0], 2);
        assert_eq!(d[&3], 1);
        assert_eq!(d[&4], 0);
    }

    #[test]
    fn sssp_matches_bfs_on_diamond() {
        let env = FlinkEnv::new(3);
        let edges = diamond();
        let got = sssp(&env, &edges, 0, 3, 50).unwrap();
        let expect = bfs_oracle(&edges, 0);
        assert_eq!(got, expect);
        assert_eq!(got[&0], 0);
        assert_eq!(got[&3], 2);
        assert_eq!(got[&4], 3);
        assert_eq!(got[&9], u64::MAX, "unreachable stays at infinity");
    }

    #[test]
    fn sssp_matches_bfs_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let edges: Vec<(u64, u64)> = (0..800)
            .map(|_| (rng.gen_range(0..150u64), rng.gen_range(0..150u64)))
            .collect();
        let env = FlinkEnv::new(4);
        let got = sssp(&env, &edges, 0, 4, 200).unwrap();
        let expect = bfs_oracle(&edges, 0);
        assert_eq!(got, expect);
    }

    #[test]
    fn sssp_from_missing_source_is_all_unreachable() {
        let env = FlinkEnv::new(2);
        let got = sssp(&env, &diamond(), 12345, 2, 10).unwrap();
        assert!(got.values().all(|&d| d == u64::MAX));
    }

    #[test]
    fn sssp_converges_early_in_delta_mode() {
        // A short path graph must stop well before max_rounds.
        let env = FlinkEnv::new(2);
        let before = env.metrics().iterations_run();
        let _ = sssp(&env, &diamond(), 0, 2, 1000).unwrap();
        assert!(env.metrics().iterations_run() - before < 10);
    }
}
