//! Hot-path hashing: a fast, deterministic hasher and pre-sized map
//! constructors for the shuffle/aggregation data plane.
//!
//! `std::collections::HashMap`'s default SipHash is DoS-resistant but slow
//! for the short keys (words, numeric ids, 10-byte sort keys) that cross
//! the shuffle, and `HashMap::new()` starts at capacity 0 so a reduce task
//! rehashes log(n) times while folding its input. Every per-record map in
//! the engines goes through this module instead: an FxHash-style
//! multiply-xor hasher (the same scheme
//! [`flowmark_dataflow::partitioner::FxHasher64`] uses for partition
//! assignment) plus constructors that pre-size to the number of records a
//! task is about to fold.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (from Firefox / rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic 64-bit multiply-xor hasher for hot-path maps.
///
/// Not DoS-resistant — fine here because every key set is produced by our
/// own generators/workloads, never by an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail — far fewer multiplies than
        // the byte-at-a-time loop for string keys.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Length tag keeps "a\0" and "a" from colliding trivially.
            word[7] = tail.len() as u8;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed by [`FxHasher64`] — the only map type the engines'
/// per-record paths are allowed to build.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// An empty [`FxHashMap`]; prefer [`fx_map_with_capacity`] when the record
/// count is known.
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// An [`FxHashMap`] pre-sized for `capacity` entries, so a reduce task
/// folding its whole input never rehashes.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Per-reducer bucket vectors pre-sized to the expected fan-out
/// (`total / n + 1` records each) — the allocation pattern of
/// [`crate::shuffle::partition_records`].
pub fn sized_buckets<T>(n: usize, total: usize) -> Vec<Vec<T>> {
    let cap = total / n.max(1) + 1;
    (0..n).map(|_| Vec::with_capacity(cap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_of(&"shuffle"), hash_of(&"shuffle"));
        assert_ne!(hash_of(&"shuffle"), hash_of(&"shufflf"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        // Tail tagging: prefixes do not collide with padded forms.
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[1u8]));
    }

    #[test]
    fn word_keys_balance_across_buckets() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for i in 0..16_000 {
            let h = hash_of(&format!("word{i}"));
            counts[(h % n as u64) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let ideal = 16_000.0 / n as f64;
        assert!(max / ideal < 1.25, "unbalanced: {counts:?}");
    }

    #[test]
    fn presized_map_never_reallocates_under_budget() {
        let mut m = fx_map_with_capacity::<u64, u64>(1000);
        let cap = m.capacity();
        for i in 0..1000 {
            m.insert(i, i);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map rehashed");
    }

    #[test]
    fn sized_buckets_shape() {
        let b: Vec<Vec<u32>> = sized_buckets(4, 100);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|v| v.capacity() >= 26));
        let empty: Vec<Vec<u32>> = sized_buckets(0, 10);
        assert!(empty.is_empty());
    }
}
