//! "Streamside": the pipelined, DataSet-based engine (Apache Flink
//! semantics).
//!
//! Faithful to §II-B/§II-C:
//! - operators are deployed **once** and connected by **pipelined
//!   channels**: shuffle producers and consumers run concurrently, with
//!   bounded channels standing in for Flink's network buffers (capacity =
//!   `network_buffers_per_channel`, backpressure when full);
//! - aggregation is the **sort-based combiner** on managed memory
//!   ([`crate::sortbuf::SortCombineBuffer`]), §VI-A;
//! - there is **no user persistence control** — re-using a `DataSet` in two
//!   jobs recomputes it from the source, the limitation §VI-B blames for
//!   Flink's Grep disadvantage;
//! - native iteration operators live in [`crate::iterate`].

use std::any::Any;
use std::collections::BTreeMap;
use std::hash::Hash;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;

use flowmark_core::config::EngineConfig;
use flowmark_core::spans::PlanTrace;
use flowmark_dataflow::partitioner::{HashPartitioner, Partitioner};

use flowmark_columnar::{Checksummable, Xxh64};

use crate::faults::{
    check_cancelled, run_recoverable, CancelToken, FaultPlan, IntegrityError, JobCancelled,
    RecoveryKind, StreamFault,
};
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::memory::BufferPool;
use crate::metrics::EngineMetrics;
use crate::runtime::{self, FragmentHandle};
use crate::shuffle::{seal, verify, Sealed, ShuffleBatch};
use crate::sortbuf::{CombineFn, SortCombineBuffer};
use flowmark_sched::{FragmentCache, FragmentKey};

/// Shared environment state.
struct EnvInner {
    /// Every tunable knob, unified: parallelism, the per-channel
    /// network-buffer pool (§IV-B), the sort/combine budget and spill
    /// discipline.
    config: EngineConfig,
    metrics: EngineMetrics,
    trace: Mutex<PlanTrace>,
    start: Instant,
    /// Peak number of concurrently live pipeline threads, a direct
    /// measurement of pipelined deployment.
    live_tasks: AtomicU64,
    peak_tasks: AtomicU64,
    /// Fault-injection plan; [`FaultPlan::disabled`] outside chaos runs.
    faults: FaultPlan,
    /// Monotone id source keying injection decisions per exchange/action.
    next_stage: AtomicU64,
    /// Job-level cancellation: set by the serve layer on deadline expiry
    /// or explicit cancel; producers, consumers and sink tasks observe it.
    cancel: CancelToken,
    /// Pending fragment-cache attachment; the next batch exchange on this
    /// environment claims it (at most one per registration).
    fragment: Mutex<Option<FragmentHandle>>,
}

/// The execution environment ("ExecutionEnvironment"). Cheap to clone.
#[derive(Clone)]
pub struct FlinkEnv {
    inner: Arc<EnvInner>,
}

impl FlinkEnv {
    /// Creates an environment with the given default parallelism; every
    /// other knob takes its [`EngineConfig`] default.
    pub fn new(parallelism: usize) -> Self {
        Self::with_config(&EngineConfig::with_parallelism(parallelism))
    }

    /// Creates an environment that executes every job under the given
    /// fault plan, recovering via checkpointed region restarts.
    pub fn with_faults(parallelism: usize, faults: FaultPlan) -> Self {
        Self::with_config_and_faults(&EngineConfig::with_parallelism(parallelism), faults)
    }

    /// Full control over buffering (used by backpressure tests).
    pub fn with_buffers(
        parallelism: usize,
        network_buffer_records: usize,
        combine_buffer_records: usize,
    ) -> Self {
        Self::with_config(&EngineConfig {
            parallelism,
            network_buffer_records,
            combine_buffer_records,
            ..EngineConfig::default()
        })
    }

    /// The unified constructor: every knob comes from one serializable
    /// [`EngineConfig`] (the surface `flowmark-tune` searches).
    pub fn with_config(config: &EngineConfig) -> Self {
        Self::with_config_and_faults(config, FaultPlan::disabled())
    }

    /// [`FlinkEnv::with_config`] plus a fault-injection plan.
    pub fn with_config_and_faults(config: &EngineConfig, faults: FaultPlan) -> Self {
        Self::with_config_faults_cancel(config, faults, CancelToken::new())
    }

    /// The full constructor: config, fault plan, and a job-level
    /// [`CancelToken`]. Setting the token tears down any in-flight job on
    /// this environment: pipeline pumps unwind with a
    /// [`crate::faults::JobCancelled`] payload and channels drain as the
    /// task scope joins.
    pub fn with_config_faults_cancel(
        config: &EngineConfig,
        faults: FaultPlan,
        cancel: CancelToken,
    ) -> Self {
        config.validate().expect("invalid engine config");
        Self {
            inner: Arc::new(EnvInner {
                config: *config,
                metrics: EngineMetrics::new(),
                trace: Mutex::new(PlanTrace::new()),
                start: Instant::now(),
                live_tasks: AtomicU64::new(0),
                peak_tasks: AtomicU64::new(0),
                faults,
                next_stage: AtomicU64::new(0),
                cancel,
                fragment: Mutex::new(None),
            }),
        }
    }

    /// The configuration this environment runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Run metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.inner.metrics
    }

    /// The environment's fault plan (disabled outside chaos runs).
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// The job-level cancellation token every pipeline task polls.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.inner.cancel
    }

    /// Attaches a cross-job fragment-cache handle: the next batch exchange
    /// on this environment consults `cache` under `key` (every reuse
    /// re-verified against its stored checksum) and populates it on miss.
    pub fn register_fragment(&self, cache: Arc<FragmentCache>, key: FragmentKey) {
        *self.inner.fragment.lock() = Some((cache, key));
    }

    fn take_fragment(&self) -> Option<FragmentHandle> {
        self.inner.fragment.lock().take()
    }

    pub(crate) fn next_stage_id(&self) -> u64 {
        self.inner.next_stage.fetch_add(1, Ordering::Relaxed)
    }

    /// Operator spans recorded so far.
    pub fn trace(&self) -> PlanTrace {
        self.inner.trace.lock().clone()
    }

    /// Default parallelism.
    pub fn parallelism(&self) -> usize {
        self.inner.config.parallelism
    }

    /// Peak concurrently-live pipeline tasks observed.
    pub fn peak_tasks(&self) -> u64 {
        self.inner.peak_tasks.load(Ordering::Relaxed)
    }

    fn task_started(&self) {
        let live = self.inner.live_tasks.fetch_add(1, Ordering::AcqRel) + 1;
        self.inner.peak_tasks.fetch_max(live, Ordering::AcqRel);
        self.inner.metrics.add_tasks_launched(1);
    }

    fn task_finished(&self) {
        self.inner.live_tasks.fetch_sub(1, Ordering::AcqRel);
    }

    fn record_span(&self, name: &str, started: Instant) {
        let t0 = started.duration_since(self.inner.start).as_secs_f64();
        let t1 = self.inner.start.elapsed().as_secs_f64();
        self.inner.trace.lock().record(name.to_string(), t0, t1);
    }

    /// Creates a DataSet from a local collection.
    pub fn from_collection<T: Clone + Send + Sync + 'static>(&self, data: Vec<T>) -> DataSet<T> {
        let parallelism = self.parallelism();
        let chunk = data.len().div_ceil(parallelism).max(1);
        let parts: Vec<Vec<T>> = data
            .chunks(chunk)
            .map(<[T]>::to_vec)
            .chain(std::iter::repeat_with(Vec::new))
            .take(parallelism)
            .collect();
        self.metrics()
            .add_records_read(parts.iter().map(Vec::len).sum::<usize>() as u64);
        DataSet {
            env: self.clone(),
            op: Arc::new(SourceOp { parts }),
            partitions: parallelism,
        }
    }
}

trait DsOp<T>: Send + Sync {
    fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<T>;
}

struct SourceOp<T> {
    parts: Vec<Vec<T>>,
}

impl<T: Clone + Send + Sync> DsOp<T> for SourceOp<T> {
    fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<T> {
        env.metrics().add_compute_calls(1);
        self.parts[part].clone()
    }
}

struct ChainOp<T, U, F>
where
    F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
{
    parent: Arc<dyn DsOp<T>>,
    f: F,
}

impl<T, U, F> DsOp<U> for ChainOp<T, U, F>
where
    T: Send + Sync,
    U: Send + Sync,
    F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
{
    fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<U> {
        env.metrics().add_compute_calls(1);
        (self.f)(self.parent.compute(env, part))
    }
}

/// A typed dataset: a plan of chained operators.
pub struct DataSet<T> {
    env: FlinkEnv,
    op: Arc<dyn DsOp<T>>,
    partitions: usize,
}

impl<T> Clone for DataSet<T> {
    fn clone(&self) -> Self {
        Self {
            env: self.env.clone(),
            op: Arc::clone(&self.op),
            partitions: self.partitions,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> DataSet<T> {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions
    }

    /// Element-wise map (chained, no task boundary).
    pub fn map<U, F>(&self, f: F) -> DataSet<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        DataSet {
            env: self.env.clone(),
            op: Arc::new(ChainOp {
                parent: Arc::clone(&self.op),
                f: move |input: Vec<T>| input.iter().map(&f).collect(),
            }),
            partitions: self.partitions,
        }
    }

    /// One-to-many map.
    pub fn flat_map<U, I, F>(&self, f: F) -> DataSet<U>
    where
        U: Clone + Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync + 'static,
    {
        DataSet {
            env: self.env.clone(),
            op: Arc::new(ChainOp {
                parent: Arc::clone(&self.op),
                f: move |input: Vec<T>| input.iter().flat_map(&f).collect(),
            }),
            partitions: self.partitions,
        }
    }

    /// Predicate filter.
    pub fn filter<F>(&self, f: F) -> DataSet<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        DataSet {
            env: self.env.clone(),
            op: Arc::new(ChainOp {
                parent: Arc::clone(&self.op),
                f: move |input: Vec<T>| input.into_iter().filter(|t| f(t)).collect(),
            }),
            partitions: self.partitions,
        }
    }

    /// Per-partition sort (`sortPartition`).
    pub fn sort_partition<F>(&self, cmp: F) -> DataSet<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
    {
        DataSet {
            env: self.env.clone(),
            op: Arc::new(ChainOp {
                parent: Arc::clone(&self.op),
                f: move |mut input: Vec<T>| {
                    input.sort_by(&cmp);
                    input
                },
            }),
            partitions: self.partitions,
        }
    }

    /// Materialises every partition with one concurrently-deployed task per
    /// partition (all tasks live at once — pipelined deployment). Under an
    /// active fault plan each sink task runs recoverably: an injected (or
    /// real) panic replays the operator chain for that partition.
    fn materialise(&self) -> Vec<Vec<T>> {
        let env = &self.env;
        let plan = env.faults();
        let stage = env.next_stage_id();
        let op = &self.op;
        // `PerJob` keeps the legacy shape (one scoped thread per partition,
        // join in order, first panic payload re-raised intact — JobCancelled
        // must reach the serve layer typed, not as a joined-thread Any);
        // `SharedPool` submits the same tasks as one work-stealing batch
        // with the identical payload contract.
        runtime::run_stage_per_task(env.config().executor, env.metrics(), self.partitions, |p| {
            env.task_started();
            let cancel = env.cancel_token();
            let out = if plan.active() {
                run_recoverable(
                    plan,
                    env.metrics(),
                    None,
                    RecoveryKind::Region,
                    stage,
                    p,
                    cancel,
                    &|| op.compute(env, p),
                )
            } else {
                check_cancelled(cancel, env.metrics(), stage, p);
                op.compute(env, p)
            };
            env.task_finished();
            out
        })
    }

    /// Counts records (action).
    pub fn count(&self) -> u64 {
        let started = Instant::now();
        let n = self.materialise().iter().map(|p| p.len() as u64).sum();
        self.env.record_span("count", started);
        n
    }

    /// Collects every record to the driver (action).
    pub fn collect(&self) -> Vec<T> {
        let started = Instant::now();
        let out = self.materialise().into_iter().flatten().collect();
        self.env.record_span("collect", started);
        out
    }

    /// Collects preserving partition boundaries (action) — used by sorted
    /// outputs where partition order carries meaning (TeraSort).
    pub fn collect_partitions(&self) -> Vec<Vec<T>> {
        let started = Instant::now();
        let out = self.materialise();
        self.env.record_span("collect", started);
        out
    }

    /// Repartitions with a custom partitioner (`partitionCustom`). The
    /// exchange is **pipelined**: senders stream records into bounded
    /// channels while receivers drain them concurrently.
    pub fn partition_custom<K, P, KF>(&self, partitioner: Arc<P>, key_of: KF) -> DataSet<T>
    where
        K: Hash + Send + Sync + 'static,
        P: Partitioner<K> + Send + Sync + 'static,
        KF: Fn(&T) -> K + Send + Sync + 'static,
    {
        let parent = Arc::clone(&self.op);
        let in_parts = self.partitions;
        let out_parts = partitioner.partitions();
        let record_bytes = std::mem::size_of::<T>();
        let op = PipelinedExchange::new(
            in_parts,
            out_parts,
            move |env: &FlinkEnv, out: &mut Outbox<T>, part| {
                let records = parent.compute(env, part);
                env.metrics().add_records_shuffled(records.len() as u64);
                env.metrics()
                    .add_bytes_shuffled((records.len() * record_bytes) as u64);
                for r in records {
                    let p = partitioner.partition(&key_of(&r));
                    out.send(p, r);
                }
            },
        );
        DataSet {
            env: self.env.clone(),
            op: Arc::new(op),
            partitions: out_parts,
        }
    }
}

impl<B> DataSet<(usize, B)>
where
    B: ShuffleBatch + Checksummable + Clone + Send + Sync + 'static,
{
    /// Batch-granularity pipelined exchange: each element is a whole
    /// pre-routed batch tagged with its target partition index, and one
    /// channel send moves the entire batch — thousands of rows per bounded-
    /// channel operation instead of one, collapsing per-record send
    /// overhead (and backpressure churn) on the hot path. Map tasks route
    /// rows into per-reducer batches themselves and tag them; this operator
    /// only streams.
    ///
    /// Every batch crosses the channels sealed with a write-time digest and
    /// is verified at receive, *before* it enters the consumer's buffers —
    /// so no corrupted batch can ever be captured by a checkpoint. A
    /// mismatch fails the region, which restarts from the last verified
    /// checkpoint; corruption that survives the retry budget escapes as a
    /// typed [`IntegrityError`].
    pub fn exchange_by_index(&self, out_parts: usize) -> DataSet<B> {
        let parent = Arc::clone(&self.op);
        let in_parts = self.partitions;
        let seed = self.env.faults().checksum_seed();
        // Claim any registered fragment-cache attachment now, at plan
        // construction: only the job that registered one pays gate overhead.
        let fragment = self.env.take_fragment();
        let op = PipelinedExchange::with_verify(
            in_parts,
            out_parts,
            move |env: &FlinkEnv, out: &mut Outbox<Sealed<B>>, part| {
                let batches = parent.compute(env, part);
                let mut sealed: Vec<(usize, Sealed<B>)> = Vec::with_capacity(batches.len());
                for (idx, batch) in batches {
                    assert!(
                        idx < out.channels(),
                        "batch routed to partition {idx} of {}",
                        out.channels()
                    );
                    env.metrics().add_records_shuffled(batch.rows() as u64);
                    env.metrics().add_bytes_shuffled(batch.bytes() as u64);
                    env.metrics().add_batches_processed(1);
                    sealed.push((idx, seal(batch, seed, env.metrics())));
                }
                // Inject transit damage *after* the digests were taken, and
                // only into a batch this attempt will actually send — a
                // victim inside the replay-suppressed restored prefix could
                // never reach a verifier.
                if let Some((kind, salt)) =
                    env.faults().corrupt_decision(out.stage(), part, out.attempt())
                {
                    let first_live = out.pending_skip() as usize;
                    if first_live < sealed.len() {
                        let victim = first_live + (salt as usize) % (sealed.len() - first_live);
                        sealed[victim].1 .1.corrupt(kind, salt.rotate_right(13));
                    }
                }
                for (idx, s) in sealed {
                    out.send(idx, s);
                }
            },
            Arc::new(move |s: &Sealed<B>| verify(s, seed)),
        );
        // Receive-time verification already vouched for every batch; what
        // flows downstream is the batch alone.
        let sealed_op = Arc::new(op) as Arc<dyn DsOp<Sealed<B>>>;
        let op: Arc<dyn DsOp<B>> = match fragment {
            Some(handle) => Arc::new(FragmentGateOp {
                inner: sealed_op,
                handle,
                seed,
                out_parts,
                resolved: std::sync::OnceLock::new(),
            }),
            None => Arc::new(ChainOp {
                parent: sealed_op,
                f: |input: Vec<Sealed<B>>| input.into_iter().map(|(_, b)| b).collect(),
            }),
        };
        DataSet {
            env: self.env.clone(),
            op,
            partitions: out_parts,
        }
    }
}

/// Gate in front of a sealed batch exchange, wired to the cross-job
/// fragment cache. Resolves once per job: a checksum-verified cache hit
/// skips the exchange (and all of its producer/consumer threads)
/// entirely; a miss runs it, stores the sealed output for future jobs,
/// and serves the unwrapped batches.
struct FragmentGateOp<B> {
    inner: Arc<dyn DsOp<Sealed<B>>>,
    handle: FragmentHandle,
    seed: u64,
    out_parts: usize,
    resolved: std::sync::OnceLock<Vec<Vec<B>>>,
}

impl<B> DsOp<B> for FragmentGateOp<B>
where
    B: ShuffleBatch + Checksummable + Clone + Send + Sync + 'static,
{
    fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<B> {
        let all = self.resolved.get_or_init(|| {
            let started = Instant::now();
            if let Some(cached) = runtime::fragment_lookup::<B>(&self.handle, env.metrics()) {
                env.record_span("pipelined-exchange(cached)", started);
                return cached
                    .into_iter()
                    .map(|p| p.into_iter().map(|(_, b)| b).collect())
                    .collect();
            }
            let sealed: Vec<Vec<Sealed<B>>> = (0..self.out_parts)
                .map(|p| self.inner.compute(env, p))
                .collect();
            runtime::fragment_store(&self.handle, env.metrics(), self.seed, &sealed);
            sealed
                .into_iter()
                .map(|p| p.into_iter().map(|(_, b)| b).collect())
                .collect()
        });
        all[part].clone()
    }
}

impl<K, V> DataSet<(K, V)>
where
    K: Clone + Send + Sync + Hash + Ord + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// `groupBy → reduce` (sum): map-side sort-based combine, pipelined hash
    /// exchange, reduce-side sort-based aggregation — Flink's aggregation
    /// component from §VI-A.
    pub fn group_reduce<F>(&self, f: F) -> DataSet<(K, V)>
    where
        F: Fn(&mut V, V) + Send + Sync + 'static,
    {
        let combine: CombineFn<V> = Arc::new(f);
        let parent = Arc::clone(&self.op);
        let in_parts = self.partitions;
        let out_parts = self.env.parallelism();
        let record_bytes = std::mem::size_of::<(K, V)>();
        let combine_records = self.env.inner.config.combine_buffer_records;
        let combine_enabled = self.env.inner.config.combine_enabled;
        let spill_run_budget = self.env.inner.config.spill_run_budget;
        let send_combine = Arc::clone(&combine);
        let exchange = PipelinedExchange::new(
            in_parts,
            out_parts,
            move |env: &FlinkEnv, out: &mut Outbox<(K, V)>, part| {
                let records = parent.compute(env, part);
                let channels = out.channels();
                let partitioner = HashPartitioner::new(channels);
                if !combine_enabled {
                    // Combine switched off: every raw record crosses the
                    // exchange (the §VI-A "aggregation component" without
                    // its map-side half).
                    env.metrics().add_records_shuffled(records.len() as u64);
                    env.metrics()
                        .add_bytes_shuffled((records.len() * record_bytes) as u64);
                    for (k, v) in records {
                        let p = partitioner.partition(&k);
                        out.send(p, (k, v));
                    }
                    return;
                }
                // Map-side combine per output channel; one shared pool
                // recycles run storage across all of this task's buffers,
                // and its outstanding cap turns run pile-ups into early
                // merges (the managed-memory spill discipline).
                let pool = Arc::new(BufferPool::with_limit(
                    2 * channels,
                    spill_run_budget * channels,
                ));
                let mut buffers: Vec<SortCombineBuffer<K, V>> = (0..channels)
                    .map(|_| {
                        SortCombineBuffer::with_pool(
                            combine_records,
                            record_bytes,
                            Arc::clone(&send_combine),
                            env.metrics().clone(),
                            Arc::clone(&pool),
                        )
                    })
                    .collect();
                for (k, v) in records {
                    let p = partitioner.partition(&k);
                    buffers[p].insert(k, v);
                }
                for (p, buf) in buffers.into_iter().enumerate() {
                    let combined = buf.finish();
                    env.metrics().add_records_shuffled(combined.len() as u64);
                    env.metrics()
                        .add_bytes_shuffled((combined.len() * record_bytes) as u64);
                    for kv in combined {
                        out.send(p, kv);
                    }
                }
            },
        );
        // Reduce side: the exchange delivers per-partition streams; fold
        // them with a final combine.
        let reduce_combine = combine;
        let reduced = ChainOp {
            parent: Arc::new(exchange) as Arc<dyn DsOp<(K, V)>>,
            f: move |input: Vec<(K, V)>| {
                let mut agg: FxHashMap<K, V> = fx_map_with_capacity(input.len());
                for (k, v) in input {
                    match agg.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            reduce_combine(e.get_mut(), v)
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                let mut out: Vec<(K, V)> = agg.into_iter().collect();
                out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                out
            },
        };
        DataSet {
            env: self.env.clone(),
            op: Arc::new(reduced),
            partitions: out_parts,
        }
    }
}

// ---- additional DataSet operators -----------------------------------------

impl<T: Clone + Send + Sync + 'static> DataSet<T> {
    /// Whole-partition map (`mapPartition`).
    pub fn map_partition<U, F>(&self, f: F) -> DataSet<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        DataSet {
            env: self.env.clone(),
            op: Arc::new(ChainOp {
                parent: Arc::clone(&self.op),
                f,
            }),
            partitions: self.partitions,
        }
    }

    /// `union`: concatenates two DataSets partition-wise.
    pub fn union(&self, other: &DataSet<T>) -> DataSet<T> {
        let left = Arc::clone(&self.op);
        let right = Arc::clone(&other.op);
        let split = self.partitions;
        let total = split + other.partitions;
        struct UnionOp<T> {
            left: Arc<dyn DsOp<T>>,
            right: Arc<dyn DsOp<T>>,
            split: usize,
        }
        impl<T: Send + Sync> DsOp<T> for UnionOp<T> {
            fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<T> {
                if part < self.split {
                    self.left.compute(env, part)
                } else {
                    self.right.compute(env, part - self.split)
                }
            }
        }
        DataSet {
            env: self.env.clone(),
            op: Arc::new(UnionOp { left, right, split }),
            partitions: total,
        }
    }

    /// Global `reduce` (action): folds every record.
    pub fn reduce<F>(&self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Send + Sync,
    {
        let started = Instant::now();
        let out = self
            .materialise()
            .into_iter()
            .filter_map(|p| p.into_iter().reduce(&f))
            .reduce(&f);
        self.env.record_span("reduce", started);
        out
    }
}

impl<T> DataSet<T>
where
    T: Clone + Send + Sync + std::hash::Hash + Ord + 'static,
{
    /// `distinct`: deduplicates via the pipelined grouping machinery.
    pub fn distinct(&self) -> DataSet<T> {
        self.map(|t| (t.clone(), ()))
            .group_reduce(|_, _| {})
            .map(|(t, _)| t.clone())
    }
}

impl<K, V> DataSet<(K, V)>
where
    K: Clone + Send + Sync + Hash + Ord + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Inner equi-`join`: both sides hash-exchange on the key, then each
    /// partition builds the left side and probes with the right — the
    /// repartition-join strategy Flink's optimizer picks for same-size
    /// inputs.
    pub fn join<W>(&self, other: &DataSet<(K, W)>) -> DataSet<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        self.co_group(other).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in vs {
                for w in ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }

    /// `coGroup`: groups both inputs by key into
    /// `(key, (left values, right values))` — the operator whose in-memory
    /// solution set drives the Table VII failures.
    pub fn co_group<W>(&self, other: &DataSet<(K, W)>) -> DataSet<(K, (Vec<V>, Vec<W>))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let tagged_left = self.map(|(k, v)| (k.clone(), (Some(v.clone()), None::<W>)));
        let tagged_right = other.map(|(k, w)| (k.clone(), (None::<V>, Some(w.clone()))));
        tagged_left
            .union(&tagged_right)
            .map(|(k, vw)| (k.clone(), vec![vw.clone()]))
            .group_reduce(|acc, mut v| acc.append(&mut v))
            .map(|(k, tagged)| {
                let mut vs = Vec::new();
                let mut ws = Vec::new();
                for (v, w) in tagged {
                    if let Some(v) = v {
                        vs.push(v.clone());
                    }
                    if let Some(w) = w {
                        ws.push(w.clone());
                    }
                }
                (k.clone(), (vs, ws))
            })
    }
}

/// One message on an exchange channel: a record tagged with its producer, a
/// channel-aligned checkpoint barrier, or a producer's end-of-stream marker.
enum Msg<T> {
    Record(usize, T),
    Barrier(usize, u64),
    Done(usize),
}

/// Producer-side handle over the exchange channels. Streams records, emits
/// aligned checkpoint barriers every `interval` sends, suppresses the
/// prefix a restored checkpoint already covers, and degrades gracefully
/// when a consumer disappears mid-stream: a failed send flags the region
/// for restart instead of panicking, so bounded-channel backpressure can
/// never deadlock a producer against a dead receiver.
pub(crate) struct Outbox<T> {
    txs: Vec<Sender<Msg<T>>>,
    producer: usize,
    /// Sends between barriers; 0 disables checkpointing (fault-free runs).
    interval: u64,
    /// Sends covered by the restored checkpoint — replayed, not re-sent.
    skip: u64,
    sent: u64,
    failed: Arc<AtomicBool>,
    fault: StreamFault,
    /// Counts sends that found the channel full (backpressure stalls).
    metrics: EngineMetrics,
    /// Exchange stage id, for the cancellation teardown payload.
    stage: u64,
    /// Region attempt this producer runs under (0 on the first deployment,
    /// incremented per restart) — the key fault-injection decisions use.
    attempt: u32,
    /// Job-level token: a set token unwinds the producer mid-stream.
    cancel: CancelToken,
}

impl<T> Outbox<T> {
    /// Number of output channels (consumer partitions).
    pub(crate) fn channels(&self) -> usize {
        self.txs.len()
    }

    /// The exchange's stage id (the injection key for this region).
    pub(crate) fn stage(&self) -> u64 {
        self.stage
    }

    /// The region attempt this producer belongs to.
    pub(crate) fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Sends the restored checkpoint already covers: this attempt's first
    /// `pending_skip()` sends are replay-suppressed, never reaching a
    /// consumer.
    pub(crate) fn pending_skip(&self) -> u64 {
        self.skip
    }

    /// Streams one record to `channel`, running the per-record fault hook
    /// (which may inject a mid-stream kill or straggler slowdown).
    pub(crate) fn send(&mut self, channel: usize, record: T) {
        check_cancelled(&self.cancel, &self.metrics, self.stage, self.producer);
        self.fault.on_event();
        self.sent += 1;
        if self.sent <= self.skip {
            // Deterministic producers re-derive the same record sequence on
            // every attempt, so the checkpointed prefix is simply skipped.
            return;
        }
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        // Try the fast non-blocking path first; a full channel is the
        // backpressure signal (§IV-B) — counted, then waited out with a
        // blocking send.
        let msg = match self.txs[channel].try_send(Msg::Record(self.producer, record)) {
            Ok(()) => None,
            Err(TrySendError::Full(msg)) => {
                self.metrics.add_backpressure_waits(1);
                Some(msg)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.failed.store(true, Ordering::Relaxed);
                return;
            }
        };
        if let Some(msg) = msg {
            if self.txs[channel].send(msg).is_err() {
                self.failed.store(true, Ordering::Relaxed);
                return;
            }
        }
        if self.interval > 0 && self.sent % self.interval == 0 {
            // Barrier k covers the first k×interval sends. Barriers for the
            // restored prefix never re-fire: those sends return early above.
            let k = self.sent / self.interval;
            for tx in &self.txs {
                if tx.send(Msg::Barrier(self.producer, k)).is_err() {
                    self.failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Ends the stream: fires any kill armed beyond the stream's length,
    /// then delivers end-of-stream markers to every consumer. A producer
    /// in a flagged (failing) region stays silent instead: it may have
    /// suppressed records after the flag went up, and advertising
    /// end-of-stream would let consumers pin a checkpoint over the
    /// truncated stream — records the replay would then skip as "already
    /// checkpointed". The attempt is doomed anyway; the channels just
    /// close.
    fn finish(mut self) {
        self.fault.on_finish();
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        for tx in &self.txs {
            let _ = tx.send(Msg::Done(self.producer));
        }
    }
}

/// One completed checkpoint as *stored*: the resolved per-producer prefix
/// lengths plus the digest taken at store time. Every reader recomputes
/// the digest before trusting the prefix ([`snapshot_digest`]), so at-rest
/// rot is detected instead of replayed into the output.
struct Snapshot {
    prefix: Vec<usize>,
    digest: u64,
}

/// Digest of a checkpoint snapshot as stored: the checkpoint id plus every
/// per-producer prefix length, keyed by the run's checksum seed.
fn snapshot_digest(seed: u64, ckpt: u64, prefix: &[usize]) -> u64 {
    let mut h = Xxh64::new(seed);
    h.write_u64(ckpt);
    for &p in prefix {
        h.write_u64(p as u64);
    }
    h.finish()
}

/// One consumer partition's state, persistent across region restarts.
struct ConsumerState<T> {
    /// Received records, segregated per producer so a checkpoint is an
    /// exact per-producer prefix regardless of channel interleaving.
    bufs: Vec<Vec<T>>,
    /// Barrier alignment in flight this attempt: checkpoint id → observed
    /// prefix length per producer (`None` until that barrier arrives).
    marks: BTreeMap<u64, Vec<Option<usize>>>,
    /// Completed checkpoints: id → stored snapshot. Survives restarts —
    /// restoring truncates `bufs` to one of these, after verification.
    snapshots: BTreeMap<u64, Snapshot>,
    done: Vec<bool>,
    /// Highest checkpoint this consumer completed since the last restore.
    completed: u64,
}

impl<T> ConsumerState<T> {
    fn new(producers: usize) -> Self {
        Self {
            bufs: (0..producers).map(|_| Vec::new()).collect(),
            marks: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            done: vec![false; producers],
            completed: 0,
        }
    }

    /// Completes every checkpoint whose barriers (or end-of-stream, which
    /// pins the prefix at the full stream) have arrived from all producers,
    /// in order, publishing progress for the restart coordinator.
    ///
    /// Completing checkpoint `k` also *scrubs* snapshot `k − 1`: the older
    /// snapshot is read back and its digest re-verified (with injected rot
    /// applied at this read, where at-rest damage is observed) while the
    /// newer one can still serve as the restore point. A failed read-back
    /// discards the snapshot and counts a rejection.
    #[allow(clippy::too_many_arguments)]
    fn try_complete(
        &mut self,
        me: usize,
        progress: &Mutex<Vec<u64>>,
        metrics: &EngineMetrics,
        record_bytes: usize,
        plan: &FaultPlan,
        stage: u64,
        attempt: u32,
        seed: u64,
    ) {
        loop {
            let next = self.completed + 1;
            let Some(positions) = self.marks.get_mut(&next) else {
                break;
            };
            if !positions
                .iter()
                .enumerate()
                .all(|(p, m)| m.is_some() || self.done[p])
            {
                break;
            }
            let mut resolved = Vec::with_capacity(positions.len());
            let mut snapshot_records = 0usize;
            for (p, m) in positions.iter_mut().enumerate() {
                let pos = *m.get_or_insert(self.bufs[p].len());
                resolved.push(pos);
                snapshot_records += pos;
            }
            let digest = snapshot_digest(seed, next, &resolved);
            self.snapshots.insert(
                next,
                Snapshot {
                    prefix: resolved,
                    digest,
                },
            );
            self.completed = next;
            metrics.add_checkpoints_taken(1);
            metrics.add_checkpoint_bytes((snapshot_records * record_bytes) as u64);
            progress.lock()[me] = next;
            let producers = self.bufs.len();
            let prev = next - 1;
            if prev > 0 {
                if let Some(snap) = self.snapshots.get(&prev) {
                    let rotten =
                        plan.checkpoint_rot_decision(stage, producers + me, prev, attempt)
                            || snap.digest != snapshot_digest(seed, prev, &snap.prefix);
                    if rotten {
                        self.snapshots.remove(&prev);
                        metrics.add_checkpoints_rejected(1);
                        metrics.add_corruptions_detected(1);
                    }
                }
            }
        }
    }

    /// Rewinds to the global restore point `g`: truncates every producer's
    /// buffer to the checkpointed prefix and clears this attempt's
    /// alignment state. `g` must have been verified (or be 0).
    fn restore(&mut self, g: u64) {
        for (p, buf) in self.bufs.iter_mut().enumerate() {
            let keep = if g == 0 { 0 } else { self.snapshots[&g].prefix[p] };
            buf.truncate(keep);
        }
        self.snapshots.split_off(&(g + 1));
        self.marks.clear();
        self.done.iter_mut().for_each(|d| *d = false);
        self.completed = g;
    }
}

fn remember_panic(slot: &Mutex<Option<Box<dyn Any + Send>>>, payload: Box<dyn Any + Send>) {
    let mut slot = slot.lock();
    if slot.is_none() {
        *slot = Some(payload);
    }
}

/// A pipelined all-to-all exchange. Producer tasks (one per input
/// partition) and the consuming operator run concurrently; per-channel
/// bounded queues model Flink's network buffers, blocking producers when a
/// consumer lags (backpressure).
///
/// Under an active fault plan the exchange is a **restartable region** with
/// channel-aligned checkpoints: producers emit barriers every
/// `checkpoint_interval_records` sends, consumers snapshot per-producer
/// prefixes when a barrier has arrived from every producer, and an injected
/// (or real) failure anywhere in the region replays it from the last
/// globally-completed checkpoint instead of aborting the job.
struct PipelinedExchange<T, P>
where
    P: Fn(&FlinkEnv, &mut Outbox<T>, usize) + Send + Sync,
{
    in_parts: usize,
    out_parts: usize,
    produce: P,
    /// Receive-time integrity check, run on every record *before* it can
    /// enter a consumer's buffers (and therefore before any checkpoint can
    /// capture it). `false` fails the region with a typed
    /// [`IntegrityError`].
    verify: Option<Arc<dyn Fn(&T) -> bool + Send + Sync>>,
    /// Materialised output, built on first access (one deployment).
    output: std::sync::OnceLock<Vec<Vec<T>>>,
}

impl<T, P> PipelinedExchange<T, P>
where
    T: Send + Sync,
    P: Fn(&FlinkEnv, &mut Outbox<T>, usize) + Send + Sync,
{
    fn new(in_parts: usize, out_parts: usize, produce: P) -> Self {
        Self {
            in_parts,
            out_parts,
            produce,
            verify: None,
            output: std::sync::OnceLock::new(),
        }
    }

    fn with_verify(
        in_parts: usize,
        out_parts: usize,
        produce: P,
        verify: Arc<dyn Fn(&T) -> bool + Send + Sync>,
    ) -> Self {
        Self {
            in_parts,
            out_parts,
            produce,
            verify: Some(verify),
            output: std::sync::OnceLock::new(),
        }
    }

    fn run(&self, env: &FlinkEnv) -> Vec<Vec<T>> {
        let started = Instant::now();
        let cap = env.inner.config.network_buffer_records;
        let record_bytes = std::mem::size_of::<T>();
        let plan = env.faults().clone();
        let stage = env.next_stage_id();
        let seed = plan.checksum_seed();
        let interval = if plan.active() {
            plan.checkpoint_interval_records()
        } else {
            0
        };
        let max_attempts = if plan.active() { plan.max_attempts() } else { 1 };

        let mut states: Vec<ConsumerState<T>> = (0..self.out_parts)
            .map(|_| ConsumerState::new(self.in_parts))
            .collect();
        // Per-consumer completed-checkpoint watermark; the restore point is
        // its minimum (a checkpoint only counts once every channel has it).
        let progress = Mutex::new(vec![0u64; self.out_parts]);
        let mut attempt = 0u32;

        loop {
            let failed = Arc::new(AtomicBool::new(false));
            let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
            let restore_point = *progress.lock().iter().min().expect("≥1 consumer");
            let (senders, receivers): (Vec<_>, Vec<_>) =
                (0..self.out_parts).map(|_| bounded::<Msg<T>>(cap)).unzip();
            std::thread::scope(|scope| {
                // Consumers deploy first — all tasks of the pipeline are
                // live at the same time.
                for (c, (rx, state)) in receivers.into_iter().zip(states.iter_mut()).enumerate() {
                    let failed = Arc::clone(&failed);
                    let (plan, metrics) = (&plan, env.metrics());
                    let (progress, first_panic) = (&progress, &first_panic);
                    let in_parts = self.in_parts;
                    let verify = self.verify.clone();
                    scope.spawn(move || {
                        env.task_started();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let mut fault = plan.stream_fault(
                                metrics,
                                stage,
                                in_parts + c,
                                attempt,
                                Arc::clone(&failed),
                            );
                            // A panic from the fault hook unwinds past the
                            // receiver, dropping it mid-stream: blocked
                            // producers see a disconnect, not a deadlock.
                            for msg in rx.iter() {
                                // A set job token unwinds the pump here;
                                // the dropped receiver disconnects blocked
                                // producers, so teardown cannot deadlock.
                                check_cancelled(
                                    env.cancel_token(),
                                    metrics,
                                    stage,
                                    in_parts + c,
                                );
                                fault.on_event();
                                match msg {
                                    Msg::Record(p, t) => {
                                        // Verify before buffering: a batch
                                        // that fails its digest must never
                                        // be checkpointable.
                                        if let Some(check) = verify.as_ref() {
                                            if !check(&t) {
                                                metrics.add_corruptions_detected(1);
                                                plan.confirm_corruption();
                                                panic_any(IntegrityError {
                                                    at: (stage, in_parts + c, attempt),
                                                    detail: "pipelined batch failed checksum \
                                                             verification at receive",
                                                });
                                            }
                                        }
                                        state.bufs[p].push(t);
                                    }
                                    Msg::Barrier(p, k) => {
                                        let n = state.bufs.len();
                                        state.marks.entry(k).or_insert_with(|| vec![None; n])
                                            [p] = Some(state.bufs[p].len());
                                        state.try_complete(
                                            c, progress, metrics, record_bytes, plan, stage,
                                            attempt, seed,
                                        );
                                    }
                                    Msg::Done(p) => {
                                        state.done[p] = true;
                                        state.try_complete(
                                            c, progress, metrics, record_bytes, plan, stage,
                                            attempt, seed,
                                        );
                                    }
                                }
                            }
                            fault.on_finish();
                        }));
                        if let Err(payload) = result {
                            failed.store(true, Ordering::Relaxed);
                            remember_panic(first_panic, payload);
                        }
                        env.task_finished();
                    });
                }
                for p in 0..self.in_parts {
                    let txs = senders.clone();
                    let failed = Arc::clone(&failed);
                    let (plan, metrics) = (&plan, env.metrics());
                    let first_panic = &first_panic;
                    let produce = &self.produce;
                    scope.spawn(move || {
                        env.task_started();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let fault =
                                plan.stream_fault(metrics, stage, p, attempt, Arc::clone(&failed));
                            let mut outbox = Outbox {
                                txs,
                                producer: p,
                                interval,
                                skip: restore_point * interval,
                                sent: 0,
                                failed: Arc::clone(&failed),
                                fault,
                                metrics: metrics.clone(),
                                stage,
                                attempt,
                                cancel: env.cancel_token().clone(),
                            };
                            produce(env, &mut outbox, p);
                            outbox.finish();
                        }));
                        if let Err(payload) = result {
                            // The dead producer never sends `Done`; dropping
                            // its channel handles lets consumers drain out.
                            failed.store(true, Ordering::Relaxed);
                            remember_panic(first_panic, payload);
                        }
                        env.task_finished();
                    });
                }
                drop(senders); // close channels so consumers finish
            });
            if !failed.load(Ordering::Relaxed) {
                break;
            }
            let payload = first_panic.into_inner();
            // A job-level cancel is teardown, not a fault: the scope has
            // already joined every task and dropped the channels, so
            // resume the JobCancelled unwind instead of restarting.
            if payload
                .as_ref()
                .is_some_and(|p| p.downcast_ref::<JobCancelled>().is_some())
            {
                resume_unwind(payload.expect("checked above"));
            }
            attempt += 1;
            if attempt >= max_attempts {
                match payload {
                    Some(payload) => resume_unwind(payload),
                    None => panic!("pipelined region failed after {attempt} attempts"),
                }
            }
            env.metrics().add_task_retries(1);
            env.metrics().add_region_restarts(1);
            // Walk the restore point down past every snapshot that fails
            // its read-back: injected rot is observed at this read, a
            // digest mismatch means the stored prefix is not what was
            // written. Either way the snapshot is discarded (and counted)
            // and the next-older checkpoint is tried — down to 0, a replay
            // from scratch, if nothing verifiable remains.
            let mut g = *progress.lock().iter().min().expect("≥1 consumer");
            while g > 0 {
                let mut ok = true;
                for (c, state) in states.iter_mut().enumerate() {
                    let Some(snap) = state.snapshots.get(&g) else {
                        // Discarded by an earlier scrub (already counted).
                        ok = false;
                        continue;
                    };
                    let rotten = plan
                        .checkpoint_rot_decision(stage, self.in_parts + c, g, attempt)
                        || snap.digest != snapshot_digest(seed, g, &snap.prefix);
                    if rotten {
                        state.snapshots.remove(&g);
                        env.metrics().add_checkpoints_rejected(1);
                        env.metrics().add_corruptions_detected(1);
                        ok = false;
                    }
                }
                if ok {
                    break;
                }
                g -= 1;
            }
            for state in &mut states {
                state.restore(g);
            }
            *progress.lock() = vec![g; self.out_parts];
            std::thread::sleep(plan.backoff(attempt));
        }
        let out: Vec<Vec<T>> = states
            .into_iter()
            .map(|s| s.bufs.into_iter().flatten().collect())
            .collect();
        env.record_span("pipelined-exchange", started);
        out
    }
}

impl<T, P> DsOp<T> for PipelinedExchange<T, P>
where
    T: Clone + Send + Sync,
    P: Fn(&FlinkEnv, &mut Outbox<T>, usize) + Send + Sync,
{
    fn compute(&self, env: &FlinkEnv, part: usize) -> Vec<T> {
        let all = self.output.get_or_init(|| self.run(env));
        all[part].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_collection_and_collect_roundtrip() {
        let env = FlinkEnv::new(4);
        let ds = env.from_collection((0..100).collect::<Vec<u32>>());
        let mut out = ds.collect();
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn filter_count_pipeline() {
        let env = FlinkEnv::new(4);
        let n = env
            .from_collection((0..1000).collect::<Vec<u32>>())
            .filter(|x| x % 10 == 0)
            .count();
        assert_eq!(n, 100);
    }

    #[test]
    fn no_persistence_means_recompute_per_job() {
        // §VI-B: Flink lacks persistence control; two actions over the same
        // DataSet re-read the source.
        let env = FlinkEnv::new(2);
        let ds = env.from_collection((0..100).collect::<Vec<u32>>()).map(|x| x + 1);
        let before = env.metrics().compute_calls();
        let _ = ds.count();
        let after_one = env.metrics().compute_calls();
        let _ = ds.count();
        let after_two = env.metrics().compute_calls();
        assert_eq!(after_two - after_one, after_one - before);
        assert!(after_one > before);
    }

    #[test]
    fn group_reduce_matches_oracle() {
        let env = FlinkEnv::new(4);
        let pairs: Vec<(String, u64)> = (0..2000).map(|i| (format!("w{}", i % 37), 1)).collect();
        let counts = env.from_collection(pairs).group_reduce(|a, b| *a += b).collect();
        assert_eq!(counts.len(), 37);
        assert!(counts.iter().all(|(_, v)| *v == 2000 / 37 + u64::from(2000 % 37 > 0) || *v >= 54));
        let total: u64 = counts.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn group_reduce_output_partitions_sorted() {
        let env = FlinkEnv::new(3);
        let pairs: Vec<(u32, u64)> = (0..500).map(|i| (i % 50, 1)).collect();
        let ds = env.from_collection(pairs).group_reduce(|a, b| *a += b);
        let parts = ds.materialise();
        for part in &parts {
            assert!(part.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn map_side_combine_shrinks_pipelined_shuffle() {
        let env = FlinkEnv::new(4);
        let pairs: Vec<(String, u64)> = (0..10_000).map(|i| (format!("k{}", i % 3), 1)).collect();
        let _ = env.from_collection(pairs).group_reduce(|a, b| *a += b).collect();
        assert!(env.metrics().records_shuffled() <= 3 * 4 * 4);
        assert!(env.metrics().combine_ratio() < 0.05);
    }

    #[test]
    fn exchange_is_pipelined_producers_and_consumers_overlap() {
        // With 4 producers + 4 consumers live at once, peak tasks during the
        // exchange must exceed what a staged execution would show (≤ 4).
        let env = FlinkEnv::new(4);
        let pairs: Vec<(u32, u64)> = (0..50_000).map(|i| (i % 1000, 1)).collect();
        let _ = env.from_collection(pairs).group_reduce(|a, b| *a += b).collect();
        assert!(
            env.peak_tasks() >= 8,
            "expected ≥8 concurrently live tasks, saw {}",
            env.peak_tasks()
        );
    }

    #[test]
    fn partition_custom_routes_by_key() {
        let env = FlinkEnv::new(4);
        let part = Arc::new(flowmark_dataflow::partitioner::RangePartitioner::new(vec![
            100u32, 200, 300,
        ]));
        let ds = env
            .from_collection((0..400u32).collect::<Vec<_>>())
            .partition_custom(part.clone(), |x| *x)
            .sort_partition(|a, b| a.cmp(b));
        assert_eq!(ds.num_partitions(), 4);
        let parts = ds.materialise();
        // TeraSort property: concatenation is globally sorted.
        let all: Vec<u32> = parts.into_iter().flatten().collect();
        assert_eq!(all.len(), 400);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounded_channels_apply_backpressure_without_deadlock() {
        // Tiny buffers force producers to block on slow consumers; the job
        // must still complete (no deadlock) and produce correct results.
        let env = FlinkEnv::with_buffers(4, 2, 64);
        let pairs: Vec<(u32, u64)> = (0..20_000).map(|i| (i % 7, 1)).collect();
        let counts = env.from_collection(pairs).group_reduce(|a, b| *a += b).collect();
        let total: u64 = counts.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn union_and_distinct() {
        let env = FlinkEnv::new(3);
        let a = env.from_collection(vec![1u32, 2, 2]);
        let b = env.from_collection(vec![2u32, 3]);
        let mut u = a.union(&b).collect();
        u.sort_unstable();
        assert_eq!(u, vec![1, 2, 2, 2, 3]);
        let mut d = a.union(&b).distinct().collect();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 3]);
    }

    #[test]
    fn global_reduce() {
        let env = FlinkEnv::new(4);
        let ds = env.from_collection((1..=100u64).collect::<Vec<_>>());
        assert_eq!(ds.reduce(|a, b| a + b), Some(5050));
        let empty = env.from_collection(Vec::<u64>::new());
        assert_eq!(empty.reduce(|a, b| a + b), None);
    }

    #[test]
    fn map_partition_sees_whole_partitions() {
        let env = FlinkEnv::new(4);
        let sizes: Vec<usize> = env
            .from_collection(vec![0u8; 20])
            .map_partition(|p| vec![p.len()])
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert_eq!(sizes.len(), 4);
    }

    #[test]
    fn join_matches_nested_loop_oracle() {
        let env = FlinkEnv::new(3);
        let left = env.from_collection(vec![(1u32, "a"), (2, "b"), (2, "c")]);
        let right = env.from_collection(vec![(2u32, 20u64), (2, 21), (3, 30)]);
        let mut out = left.join(&right).collect();
        out.sort_by(|a, b| (a.0, a.1 .0, a.1 .1).cmp(&(b.0, b.1 .0, b.1 .1)));
        assert_eq!(
            out,
            vec![
                (2, ("b", 20)),
                (2, ("b", 21)),
                (2, ("c", 20)),
                (2, ("c", 21)),
            ]
        );
    }

    #[test]
    fn co_group_collects_both_sides() {
        let env = FlinkEnv::new(2);
        let left = env.from_collection(vec![(1u32, 100u64), (1, 101)]);
        let right = env.from_collection(vec![(1u32, 7u64), (9, 9)]);
        let cg: std::collections::HashMap<_, _> =
            left.co_group(&right).collect().into_iter().collect();
        let (mut vs, ws) = cg[&1].clone();
        vs.sort_unstable();
        assert_eq!(vs, vec![100, 101]);
        assert_eq!(ws, vec![7]);
        assert!(cg[&9].0.is_empty());
        assert_eq!(cg[&9].1, vec![9]);
    }

    #[test]
    fn injected_failures_recover_from_aligned_checkpoints() {
        use crate::faults::FaultConfig;
        let cfg = FaultConfig {
            seed: 3,
            task_failure_prob: 0.35,
            fail_first_n: 1,
            straggle_first_n: 1,
            straggler_slowdown: std::time::Duration::from_millis(5),
            checkpoint_interval_records: 32,
            ..FaultConfig::default()
        };
        let env = FlinkEnv::with_faults(4, FaultPlan::new(cfg));
        let pairs: Vec<(u32, u64)> = (0..6000).map(|i| (i % 97, 1)).collect();
        let faulted = env
            .from_collection(pairs.clone())
            .group_reduce(|a, b| *a += b)
            .collect();
        let clean = FlinkEnv::new(4)
            .from_collection(pairs)
            .group_reduce(|a, b| *a += b)
            .collect();
        assert_eq!(faulted, clean, "recovery must reproduce the fault-free result");
        let rec = env.metrics().recovery();
        assert!(rec.injected_failures >= 1);
        assert!(rec.injected_stragglers >= 1);
        assert!(rec.task_retries >= 1);
        assert!(rec.checkpoints_taken >= 1, "barriers every 32 records must align");
    }

    #[test]
    fn dropped_receiver_mid_stream_does_not_deadlock_senders() {
        use crate::faults::FaultConfig;
        // Kill consumer 0 of the first exchange (stage 1, partition
        // in_parts + 0 = 4) on its first attempt, mid-drain. With capacity-2
        // channels the producers are blocked in `send` when the receiver
        // drops; they must observe the disconnect, flag the region, and let
        // the restart replay — not deadlock or crash the job.
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            kill_list: vec![(1, 4, 0)],
            ..FaultConfig::default()
        });
        let env = FlinkEnv::with_config_and_faults(
            &EngineConfig {
                parallelism: 4,
                network_buffer_records: 2,
                combine_buffer_records: 64,
                ..EngineConfig::default()
            },
            plan,
        );
        let part = Arc::new(flowmark_dataflow::partitioner::RangePartitioner::new(vec![
            5_000u32, 10_000, 15_000,
        ]));
        let all: Vec<u32> = env
            .from_collection((0..20_000u32).collect::<Vec<_>>())
            .partition_custom(part, |x| *x)
            .sort_partition(|a, b| a.cmp(b))
            .collect_partitions()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(all, (0..20_000u32).collect::<Vec<_>>());
        let rec = env.metrics().recovery();
        assert!(rec.injected_failures >= 1, "the targeted consumer kill must fire");
        assert!(rec.region_restarts >= 1, "the region must have been replayed");
    }

    #[test]
    fn flagged_producer_finishes_without_end_of_stream_marker() {
        // Regression: once the region is flagged, a producer that may have
        // suppressed records must NOT send `Done` — consumers would pin a
        // checkpoint over the truncated stream and the replay would skip
        // records the snapshot never held (silent data loss under
        // concurrent kills).
        let metrics = EngineMetrics::new();
        let plan = FaultPlan::disabled();
        let count_done = |failed: bool| {
            let (tx, rx) = bounded::<Msg<u32>>(16);
            let flag = Arc::new(AtomicBool::new(failed));
            let mut outbox = Outbox {
                txs: vec![tx],
                producer: 0,
                interval: 4,
                skip: 0,
                sent: 0,
                failed: Arc::clone(&flag),
                fault: plan.stream_fault(&metrics, 0, 0, 0, Arc::new(AtomicBool::new(false))),
                metrics: metrics.clone(),
                stage: 0,
                attempt: 0,
                cancel: CancelToken::new(),
            };
            outbox.send(0, 1u32);
            outbox.finish();
            rx.iter().filter(|m| matches!(m, Msg::Done(_))).count()
        };
        assert_eq!(count_done(false), 1, "healthy producers advertise end-of-stream");
        assert_eq!(count_done(true), 0, "flagged producers must stay silent");
    }

    /// Routes `0..n` into per-consumer `Vec<u64>` batches of 8 rows each
    /// and streams them through the batch-granularity exchange.
    fn routed(env: &FlinkEnv, n: u64, parts: usize) -> DataSet<Vec<u64>> {
        let batches: Vec<(usize, Vec<u64>)> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(8)
            .map(|c| ((c[0] as usize / 8) % parts, c.to_vec()))
            .collect();
        env.from_collection(batches).exchange_by_index(parts)
    }

    #[test]
    fn batch_exchange_seals_and_verifies_fault_free() {
        let env = FlinkEnv::new(4);
        let mut all: Vec<u64> = routed(&env, 160, 4).collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..160).collect::<Vec<u64>>());
        let rec = env.metrics().recovery();
        assert_eq!(rec.batches_checksummed, 20, "one digest per shipped batch");
        assert_eq!(rec.corruptions_detected, 0);
    }

    #[test]
    fn batch_exchange_corruption_fails_the_region_and_recovers() {
        use crate::faults::FaultConfig;
        let env = FlinkEnv::with_faults(
            4,
            FaultPlan::new(FaultConfig {
                seed: 17,
                corrupt_first_n: 1,
                checkpoint_interval_records: 2,
                ..FaultConfig::default()
            }),
        );
        let mut all: Vec<u64> = routed(&env, 400, 4).collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<u64>>(), "recovery must restore the data");
        let rec = env.metrics().recovery();
        assert!(rec.corruptions_detected >= 1, "armed corruption must be caught at receive");
        assert!(rec.region_restarts >= 1, "a failed digest must fail the region");
        assert_eq!(rec.partitions_recomputed, 0, "pipelined recovery is regions, not lineage");
    }

    #[test]
    fn rotten_checkpoint_snapshot_is_rejected_at_read_back() {
        use crate::faults::FaultConfig;
        // Tight barriers complete many checkpoints; the guaranteed rot
        // budget makes one of the read-backs (scrub or restore) fail its
        // digest and be discarded.
        let env = FlinkEnv::with_faults(
            4,
            FaultPlan::new(FaultConfig {
                seed: 23,
                checkpoint_corrupt_first_n: 1,
                checkpoint_interval_records: 2,
                ..FaultConfig::default()
            }),
        );
        let mut all: Vec<u64> = routed(&env, 400, 4).collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<u64>>());
        let rec = env.metrics().recovery();
        assert!(rec.checkpoints_taken >= 2, "need ≥2 checkpoints for a scrub to fire");
        assert!(rec.checkpoints_rejected >= 1, "the rotten snapshot must be discarded");
    }

    #[test]
    fn kill_during_batch_exchange_restarts_from_verified_checkpoint() {
        use crate::faults::FaultConfig;
        // Kill producer 0 of the batch exchange (stage 1 — the sink
        // materialise takes stage 0) mid-stream on its first attempt, with
        // barriers every 2 sends: the region must restart, replay only the
        // unsnapshotted suffix, and reproduce the oracle byte-for-byte.
        let env = FlinkEnv::with_faults(
            4,
            FaultPlan::new(FaultConfig {
                seed: 29,
                kill_list: vec![(1, 0, 0)],
                checkpoint_interval_records: 2,
                ..FaultConfig::default()
            }),
        );
        let mut all: Vec<u64> = routed(&env, 400, 4).collect().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<u64>>());
        let rec = env.metrics().recovery();
        assert!(rec.injected_failures >= 1, "the targeted producer kill must fire");
        assert!(rec.region_restarts >= 1);
        assert!(rec.checkpoints_taken >= 1, "barriers must align at batch granularity");
    }

    #[test]
    fn fault_plan_accessor_defaults_to_disabled() {
        assert!(!FlinkEnv::new(2).faults().active());
        assert!(FlinkEnv::with_faults(2, FaultPlan::new(crate::faults::FaultConfig::chaos(1)))
            .faults()
            .active());
    }

    #[test]
    fn trace_contains_exchange_span() {
        let env = FlinkEnv::new(2);
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1)).collect();
        let _ = env.from_collection(pairs).group_reduce(|a, b| *a += b).collect();
        let trace = env.trace();
        assert!(trace.spans().iter().any(|s| s.name == "pipelined-exchange"));
    }
}
