//! Shared stage-execution seam for both engines.
//!
//! Before PR 8 the two engines duplicated their task spawn/join
//! scaffolding: the staged engine fanned each stage through the rayon
//! shim (scoped chunk threads per call), the pipelined engine spawned
//! one scoped thread per partition per operator and re-raised the first
//! join panic. Both shapes now live here, behind one seam keyed on
//! [`ExecutorMode`]:
//!
//! - [`ExecutorMode::PerJob`] preserves each engine's legacy spawning
//!   byte-for-byte (it is the measured bench baseline);
//! - [`ExecutorMode::SharedPool`] submits the stage as one batch to the
//!   process-wide work-stealing [`TaskPool`], so concurrent jobs share
//!   a fixed core set instead of oversubscribing the machine. Steal and
//!   queue-wait counts feed [`EngineMetrics`].
//!
//! The pipelined engine's exchange producers/consumers are *not* routed
//! through the pool in either mode: they block on bounded channels, and
//! parking blocking tasks in a fixed-size pool is a deadlock. Only
//! finite stage/partition tasks go through this seam.
//!
//! This module also holds the engine side of the cross-job fragment
//! cache: [`CachedStage`] is the stored shape (sealed batches plus the
//! seal seed), and [`fragment_lookup`]/[`fragment_store`] wrap the
//! type-erased `flowmark-sched` cache with the PR 7 checksum
//! re-verification that makes a reuse trustworthy.

use std::panic::resume_unwind;
use std::sync::{Arc, Mutex};

use flowmark_columnar::checksum::Checksummable;
use flowmark_core::config::ExecutorMode;
use flowmark_sched::{FragmentCache, FragmentKey, TaskPool};
use rayon::prelude::*;

use crate::metrics::EngineMetrics;
use crate::shuffle::{verify, Sealed, ShuffleBatch};

/// A registered fragment-cache attachment: where to look and under
/// which key. Engines hold at most one pending handle per job; the
/// first batch exchange consumes it.
pub type FragmentHandle = (Arc<FragmentCache>, FragmentKey);

/// The stored shape of one cached stage output: every reducer's sealed
/// batches plus the checksum seed they were sealed under, so a reuse
/// can re-verify digests regardless of the consuming job's own seed.
pub struct CachedStage<B> {
    /// Seed the digests were computed with at seal time.
    pub seed: u64,
    /// Per-output-partition sealed batches.
    pub parts: Vec<Vec<Sealed<B>>>,
}

/// Run `n` independent stage tasks, returning outputs in index order.
///
/// `PerJob` keeps the staged engine's legacy shape (chunked scoped
/// threads via the rayon shim); `SharedPool` submits one pool batch.
pub fn run_stage<T, F>(mode: ExecutorMode, metrics: &EngineMetrics, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match mode {
        ExecutorMode::PerJob => (0..n).into_par_iter().map(f).collect(),
        ExecutorMode::SharedPool => pool_run(metrics, n, f),
    }
}

/// Like [`run_stage`], but each task consumes an owned input item.
pub fn run_stage_items<I, T, F>(
    mode: ExecutorMode,
    metrics: &EngineMetrics,
    items: Vec<I>,
    f: F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    match mode {
        ExecutorMode::PerJob => items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(i, item)| f(i, item))
            .collect(),
        ExecutorMode::SharedPool => {
            let inputs: Vec<Mutex<Option<I>>> =
                items.into_iter().map(|i| Mutex::new(Some(i))).collect();
            pool_run(metrics, inputs.len(), |i| {
                let item = take_slot(&inputs[i]);
                f(i, item)
            })
        }
    }
}

/// Run `n` tasks with the pipelined engine's legacy shape: one scoped
/// thread per task (`PerJob`), joining in order and re-raising the
/// first panic payload intact — or a shared-pool batch (`SharedPool`),
/// which preserves the same payload contract.
pub fn run_stage_per_task<T, F>(
    mode: ExecutorMode,
    metrics: &EngineMetrics,
    n: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match mode {
        ExecutorMode::PerJob => std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..n).map(|i| scope.spawn(move || f(i))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
                .collect()
        }),
        ExecutorMode::SharedPool => pool_run(metrics, n, f),
    }
}

/// Submit one batch of `n` index tasks to the global pool and fold its
/// steal/queue-wait stats into `metrics`.
fn pool_run<T, F>(metrics: &EngineMetrics, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
        .map(|i| {
            let slots = &slots;
            let f = &f;
            Box::new(move || {
                let value = f(i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let stats = TaskPool::global().run_batch(tasks);
    metrics.add_tasks_stolen(stats.tasks_stolen);
    metrics.add_queue_wait_micros(stats.queue_wait_micros);
    metrics.add_queue_wait_tasks(stats.tasks);
    slots.into_iter().map(|s| take_slot(&s)).collect()
}

fn take_slot<T>(slot: &Mutex<Option<T>>) -> T {
    slot.lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("pool task completed and filled its slot")
}

/// Engine side of a fragment-cache read: look the key up, re-verify
/// **every** cached batch against its stored seal seed (the PR 7
/// checksum), and only then count a hit. A failed verification
/// invalidates the entry and falls back to recomputation — a rotten
/// cache degrades to a miss, never a wrong answer.
pub fn fragment_lookup<B>(
    handle: &FragmentHandle,
    metrics: &EngineMetrics,
) -> Option<Vec<Vec<Sealed<B>>>>
where
    B: ShuffleBatch + Checksummable + Clone + Send + Sync + 'static,
{
    let (cache, key) = handle;
    let any = cache.get(key)?;
    let stage = any.downcast_ref::<CachedStage<B>>()?;
    let verified = stage
        .parts
        .iter()
        .all(|part| part.iter().all(|sealed| verify(sealed, stage.seed)));
    if !verified {
        cache.invalidate(key);
        return None;
    }
    metrics.add_fragment_cache_hits(1);
    Some(stage.parts.clone())
}

/// Engine side of a fragment-cache write: store this job's freshly
/// computed (and already verified) sealed stage output under its key,
/// charged by payload bytes plus digest overhead.
pub fn fragment_store<B>(
    handle: &FragmentHandle,
    metrics: &EngineMetrics,
    seed: u64,
    parts: &[Vec<Sealed<B>>],
) where
    B: ShuffleBatch + Checksummable + Clone + Send + Sync + 'static,
{
    let (cache, key) = handle;
    let bytes: u64 = parts
        .iter()
        .flat_map(|p| p.iter())
        .map(|(_, b)| b.bytes() as u64 + 8)
        .sum();
    let evicted = cache.insert(
        *key,
        Arc::new(CachedStage {
            seed,
            parts: parts.to_vec(),
        }),
        bytes,
    );
    metrics.add_fragment_cache_evictions(evicted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_columnar::StrU64Batch;

    #[test]
    fn run_stage_modes_agree() {
        let metrics = EngineMetrics::new();
        let per_job = run_stage(ExecutorMode::PerJob, &metrics, 16, |i| i * i);
        let pooled = run_stage(ExecutorMode::SharedPool, &metrics, 16, |i| i * i);
        assert_eq!(per_job, pooled);
        assert_eq!(metrics.queue_wait_tasks(), 16);
    }

    #[test]
    fn run_stage_items_modes_agree() {
        let metrics = EngineMetrics::new();
        let items: Vec<String> = (0..9).map(|i| format!("x{i}")).collect();
        let per_job = run_stage_items(ExecutorMode::PerJob, &metrics, items.clone(), |i, s| {
            format!("{i}:{s}")
        });
        let pooled =
            run_stage_items(ExecutorMode::SharedPool, &metrics, items, |i, s| {
                format!("{i}:{s}")
            });
        assert_eq!(per_job, pooled);
    }

    #[test]
    fn per_task_mode_preserves_panic_payloads() {
        crate::faults::install_quiet_hook();
        let metrics = EngineMetrics::new();
        for mode in [ExecutorMode::PerJob, ExecutorMode::SharedPool] {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_stage_per_task(mode, &metrics, 4, |i| {
                    if i == 2 {
                        std::panic::panic_any(crate::faults::JobCancelled { at: (7, i) });
                    }
                    i
                })
            }))
            .expect_err("panic must propagate");
            let cancelled = err
                .downcast_ref::<crate::faults::JobCancelled>()
                .expect("typed payload intact");
            assert_eq!(cancelled.at, (7, 2));
        }
    }

    #[test]
    fn fragment_round_trip_verifies_and_detects_rot() {
        let metrics = EngineMetrics::new();
        let cache = Arc::new(FragmentCache::new(1 << 20));
        let key = FragmentKey {
            plan: 1,
            input: 2,
            config: 3,
            faults: 4,
        };
        let handle: FragmentHandle = (Arc::clone(&cache), key);
        let seed = 99;
        let batch = StrU64Batch::from_pairs(vec![("alpha".to_string(), 1), ("beta".to_string(), 2)]);
        let sealed = crate::shuffle::seal(batch, seed, &metrics);
        let parts = vec![vec![sealed]];
        assert!(fragment_lookup::<StrU64Batch>(&handle, &metrics).is_none());
        fragment_store(&handle, &metrics, seed, &parts);
        let got = fragment_lookup::<StrU64Batch>(&handle, &metrics).expect("verified hit");
        assert_eq!(got.len(), 1);
        assert_eq!(metrics.fragment_cache_hits(), 1);
        // Poison the stored digest: the next lookup must invalidate, not
        // alias.
        let mut rotten = parts.clone();
        rotten[0][0].0 ^= 1;
        let (c, k) = &handle;
        c.insert(*k, Arc::new(CachedStage { seed, parts: rotten }), 64);
        assert!(fragment_lookup::<StrU64Batch>(&handle, &metrics).is_none());
        assert_eq!(metrics.fragment_cache_hits(), 1, "no hit on rot");
        assert_eq!(cache.stats().invalidations, 1);
    }
}
