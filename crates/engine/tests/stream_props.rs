//! Property-based exactly-once drill for the streaming runtimes: targeted
//! kills at *any* task attempt — before the first barrier, between
//! barriers, during recovery — must never duplicate or lose a committed
//! window result.

use proptest::prelude::*;

use flowmark_engine::faults::{install_quiet_hook, CancelToken, FaultConfig, FaultPlan};
use flowmark_engine::metrics::EngineMetrics;
use flowmark_engine::streaming::{
    run_continuous_checkpointed, run_micro_batch_checkpointed, SourceConfig, StreamEvent,
    StreamJobConfig, StreamSource, WindowAssigner, WindowedAggregate,
};

/// Extractor over plain `(key, value)` pairs.
fn kv_extract(e: &(u64, u64)) -> Option<(u64, u64)> {
    Some((e.0, e.1))
}

/// Routes `(key, value)` pairs by key.
fn kv_route(e: &(u64, u64)) -> u64 {
    e.0
}

/// The fault-free answer, computed on the untouched runtime.
fn oracle(src: &StreamSource<(u64, u64)>, cfg: &StreamJobConfig) -> Vec<(u64, u64, u64)> {
    let metrics = EngineMetrics::new();
    let out = run_continuous_checkpointed(
        src,
        |_| WindowedAggregate::new(WindowAssigner::Tumbling { size: 16 }, kv_extract),
        kv_route,
        cfg,
        &FaultPlan::new(FaultConfig {
            checkpoint_interval_records: 8,
            ..FaultConfig::default()
        }),
        &metrics,
        &CancelToken::new(),
    );
    canon(out.committed)
}

fn canon(committed: Vec<(u64, flowmark_engine::streaming::WindowResult)>) -> Vec<(u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64)> = committed
        .into_iter()
        .map(|(_, w)| (w.key, w.start, w.sum))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill any set of task attempts — any partition, any attempt number,
    /// i.e. any barrier boundary the job may be straddling — and both
    /// runtimes must still commit exactly the fault-free answer.
    #[test]
    fn exactly_once_survives_kills_at_any_barrier(
        values in prop::collection::vec((0u64..4, 1u64..1000), 24..96),
        kills in prop::collection::vec((0usize..3, 0u32..2), 1..4),
        micro in any::<bool>(),
    ) {
        install_quiet_hook();
        let events: Vec<StreamEvent<(u64, u64)>> = values
            .iter()
            .enumerate()
            .map(|(i, &kv)| StreamEvent::new(i as u64 * 2, kv))
            .collect();
        let src = StreamSource::with_config(
            events,
            SourceConfig {
                allowance: 16,
                watermark_every: 4,
                stall_watermark_after: None,
                hold_at_end: false,
            },
        );
        let cfg = StreamJobConfig {
            parallelism: 3,
            ..StreamJobConfig::default()
        };
        let expect = oracle(&src, &cfg);

        // Tasks live at stage `cfg.stage + 1`; kill_list triples may name
        // any (partition, attempt), so a kill can land before the first
        // barrier, mid-epoch, or while replaying a recovery.
        let stage = cfg.stage + 1;
        // The first kill targets attempt 0 so at least one is guaranteed
        // to land; later entries may name attempt 1 (a kill *during*
        // recovery), which only fires if that task actually restarts.
        let kill_list: Vec<(u64, usize, u32)> = kills
            .iter()
            .enumerate()
            .map(|(i, &(part, attempt))| (stage, part, if i == 0 { 0 } else { attempt }))
            .collect();
        let plan = FaultPlan::new(FaultConfig {
            kill_list: kill_list.clone(),
            checkpoint_interval_records: 8,
            max_attempts: 8,
            ..FaultConfig::default()
        });
        let metrics = EngineMetrics::new();
        let cancel = CancelToken::new();
        let make_op =
            |_: usize| WindowedAggregate::new(WindowAssigner::Tumbling { size: 16 }, kv_extract);
        let out = if micro {
            run_micro_batch_checkpointed(&src, make_op, kv_route, &cfg, &plan, &metrics, &cancel)
        } else {
            run_continuous_checkpointed(&src, make_op, kv_route, &cfg, &plan, &metrics, &cancel)
        };
        prop_assert!(metrics.recovery().injected_failures > 0, "no kill landed");
        prop_assert_eq!(canon(out.committed.clone()), expect, "kills broke exactly-once");
        prop_assert!(
            metrics.stream_batches() > 0,
            "default config must take the slab transport"
        );

        // Batch-vs-record transport equality under the same kill schedule:
        // the slab path must commit the byte-identical (epoch, result)
        // sequence the event-at-a-time path commits.
        let record_cfg = StreamJobConfig { slab_rows: 1, ..cfg.clone() };
        let record_plan = FaultPlan::new(FaultConfig {
            kill_list,
            checkpoint_interval_records: 8,
            max_attempts: 8,
            ..FaultConfig::default()
        });
        let record_metrics = EngineMetrics::new();
        let record_out = if micro {
            run_micro_batch_checkpointed(
                &src, make_op, kv_route, &record_cfg, &record_plan, &record_metrics, &cancel)
        } else {
            run_continuous_checkpointed(
                &src, make_op, kv_route, &record_cfg, &record_plan, &record_metrics, &cancel)
        };
        prop_assert_eq!(
            record_metrics.stream_batches(), 0,
            "slab_rows <= 1 must stay on the per-event transport"
        );
        prop_assert_eq!(
            out.committed, record_out.committed,
            "slab and per-event transports diverged under kills"
        );
    }
}
