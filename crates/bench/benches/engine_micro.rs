//! Microbenchmarks of the real engines' substrates: the components whose
//! costs the simulator's calibration constants stand for.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use flowmark_datagen::terasort::TeraGen;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_dataflow::partitioner::{fxhash, HashPartitioner, Partitioner, RangePartitioner};
use flowmark_engine::sortbuf::SortCombineBuffer;
use flowmark_engine::{EngineMetrics, FlinkEnv, SparkContext};
use flowmark_workloads::{terasort, wordcount};

fn bench_partitioners(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    let keys: Vec<String> = (0..10_000).map(|i| format!("word{i:06}")).collect();
    g.throughput(Throughput::Elements(keys.len() as u64));
    let hp = HashPartitioner::new(512);
    g.bench_function("hash_10k_keys", |b| {
        b.iter(|| keys.iter().map(|k| hp.partition(k)).sum::<usize>())
    });
    let splits: Vec<u64> = (1..512).map(|i| i * 1_000_000).collect();
    let rp = RangePartitioner::new(splits);
    let nums: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(48_271) % 512_000_000).collect();
    g.bench_function("range_10k_keys", |b| {
        b.iter(|| nums.iter().map(|k| rp.partition(k)).sum::<usize>())
    });
    g.bench_function("fxhash_10k", |b| {
        b.iter(|| keys.iter().map(fxhash).fold(0u64, u64::wrapping_add))
    });
    g.finish();
}

fn bench_sort_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sortbuf");
    let pairs: Vec<(String, u64)> = (0..100_000)
        .map(|i| (format!("k{}", i % 5_000), 1u64))
        .collect();
    g.throughput(Throughput::Elements(pairs.len() as u64));
    for capacity in [1_024usize, 16_384] {
        g.bench_function(format!("combine_100k_cap{capacity}"), |b| {
            b.iter_batched(
                || pairs.clone(),
                |data| {
                    let mut buf = SortCombineBuffer::new(
                        capacity,
                        24,
                        Arc::new(|a: &mut u64, v| *a += v),
                        EngineMetrics::new(),
                    );
                    for (k, v) in data {
                        buf.insert(k, v);
                    }
                    buf.finish().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_wordcount_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("wordcount_real");
    g.sample_size(10);
    let lines = TextGen::new(TextGenConfig::default(), 9).lines(20_000);
    g.throughput(Throughput::Elements(lines.len() as u64));
    g.bench_function("staged_8p", |b| {
        b.iter_batched(
            || lines.clone(),
            |data| {
                let sc = SparkContext::new(8, 128 << 20);
                wordcount::run_spark(&sc, data, 8).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("pipelined_8p", |b| {
        b.iter_batched(
            || lines.clone(),
            |data| {
                let env = FlinkEnv::new(8);
                wordcount::run_flink(&env, data).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_terasort_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("terasort_real");
    g.sample_size(10);
    let records = TeraGen::new(5).records(50_000);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("staged_8p", |b| {
        b.iter_batched(
            || records.clone(),
            |data| {
                let sc = SparkContext::new(8, 128 << 20);
                terasort::run_spark(&sc, data, 8).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("pipelined_8p", |b| {
        b.iter_batched(
            || records.clone(),
            |data| {
                let env = FlinkEnv::new(8);
                terasort::run_flink(&env, data, 8).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default();
    targets = bench_partitioners, bench_sort_combine, bench_wordcount_engines,
              bench_terasort_engines
}
criterion_main!(micro);
