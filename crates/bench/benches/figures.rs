//! One Criterion group per paper figure/table. Each group first prints the
//! regenerated series (the rows the paper reports), then benchmarks one
//! representative simulated trial so regressions in the simulator's cost
//! show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};

use flowmark_bench::{one_trial, print_figure};
use flowmark_core::config::Framework;
use flowmark_sim::Calibration;
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::grep::{self, GrepScale};
use flowmark_workloads::kmeans::{self, KMeansScale};
use flowmark_workloads::pagerank::{self, GraphScale};
use flowmark_workloads::presets;
use flowmark_workloads::terasort::{self, TeraSortScale};
use flowmark_workloads::wordcount::{self, WordCountScale};

fn bench_cell(c: &mut Criterion, name: &str, plan: flowmark_dataflow::plan::LogicalPlan, fw: Framework, run: flowmark_core::config::RunConfig) {
    c.bench_function(name, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            one_trial(&plan, fw, &run, seed).expect("valid")
        })
    });
}

fn fig1_wordcount_weak(c: &mut Criterion) {
    let cells: Vec<_> = [2u32, 4, 8, 16, 32]
        .iter()
        .map(|&n| {
            let s = WordCountScale::per_node(n, 24.0);
            (
                n as f64,
                wordcount::plan(Framework::Spark, &s),
                wordcount::plan(Framework::Flink, &s),
                presets::wordcount_config(n),
            )
        })
        .collect();
    print_figure("fig1", "Word Count - fixed problem size per node (24GB)", "Nodes", &cells);
    let s = WordCountScale::per_node(32, 24.0);
    bench_cell(c, "fig1_wordcount_weak/flink_32n", wordcount::plan(Framework::Flink, &s), Framework::Flink, presets::wordcount_config(32));
    bench_cell(c, "fig1_wordcount_weak/spark_32n", wordcount::plan(Framework::Spark, &s), Framework::Spark, presets::wordcount_config(32));
}

fn fig2_wordcount_strong(c: &mut Criterion) {
    let cells: Vec<_> = [24.0, 27.0, 30.0, 33.0]
        .iter()
        .map(|&gb| {
            let s = WordCountScale::per_node(16, gb);
            (
                gb,
                wordcount::plan(Framework::Spark, &s),
                wordcount::plan(Framework::Flink, &s),
                presets::wordcount_config(16),
            )
        })
        .collect();
    print_figure("fig2", "Word Count - 16 nodes, different datasets", "GB/node", &cells);
    let s = WordCountScale::per_node(16, 33.0);
    bench_cell(c, "fig2_wordcount_strong/flink_33gb", wordcount::plan(Framework::Flink, &s), Framework::Flink, presets::wordcount_config(16));
}

fn fig3_wordcount_resources(c: &mut Criterion) {
    // The resource figure: time the full telemetry-producing simulation.
    let cal = Calibration::default();
    let s = WordCountScale::per_node(32, 24.0);
    let run = presets::wordcount_config(32);
    let spark_plan = wordcount::plan(Framework::Spark, &s);
    let flink_plan = wordcount::plan(Framework::Flink, &s);
    c.bench_function("fig3_wordcount_resources/telemetry_both", |b| {
        b.iter(|| {
            let a = flowmark_sim::simulate(&spark_plan, Framework::Spark, &run, &cal, 1).unwrap();
            let z = flowmark_sim::simulate(&flink_plan, Framework::Flink, &run, &cal, 1).unwrap();
            (a.telemetry.duration(), z.telemetry.duration())
        })
    });
}

fn fig4_fig5_grep(c: &mut Criterion) {
    let cells: Vec<_> = [2u32, 4, 8, 16, 32]
        .iter()
        .map(|&n| {
            let s = GrepScale::per_node(n, 24.0);
            (
                n as f64,
                grep::plan(Framework::Spark, &s),
                grep::plan(Framework::Flink, &s),
                presets::grep_config(n),
            )
        })
        .collect();
    print_figure("fig4", "Grep - fixed problem size per node (24GB)", "Nodes", &cells);
    let cells5: Vec<_> = [24.0, 27.0, 30.0, 33.0]
        .iter()
        .map(|&gb| {
            let s = GrepScale::per_node(16, gb);
            (
                gb,
                grep::plan(Framework::Spark, &s),
                grep::plan(Framework::Flink, &s),
                presets::grep_config(16),
            )
        })
        .collect();
    print_figure("fig5", "Grep - 16 nodes, different datasets", "GB/node", &cells5);
    let s = GrepScale::per_node(32, 24.0);
    bench_cell(c, "fig4_grep_weak/spark_32n", grep::plan(Framework::Spark, &s), Framework::Spark, presets::grep_config(32));
    bench_cell(c, "fig6_grep_resources/flink_32n", grep::plan(Framework::Flink, &s), Framework::Flink, presets::grep_config(32));
}

fn fig7_fig8_terasort(c: &mut Criterion) {
    let cells7: Vec<_> = [17u32, 34, 63]
        .iter()
        .map(|&n| {
            let s = TeraSortScale::per_node(n, 32.0);
            (
                n as f64,
                terasort::plan(Framework::Spark, &s),
                terasort::plan(Framework::Flink, &s),
                presets::terasort_config(n),
            )
        })
        .collect();
    print_figure("fig7", "Tera Sort - fixed problem size per node (32 GB)", "Nodes", &cells7);
    let s8 = TeraSortScale::total_tb(3.5);
    let cells8: Vec<_> = [55u32, 73, 97]
        .iter()
        .map(|&n| {
            (
                n as f64,
                terasort::plan(Framework::Spark, &s8),
                terasort::plan(Framework::Flink, &s8),
                presets::terasort_config(n),
            )
        })
        .collect();
    print_figure("fig8", "Tera Sort - adding nodes, same dataset (3.5TB)", "Nodes", &cells8);
    bench_cell(c, "fig9_terasort_resources/flink_55n", terasort::plan(Framework::Flink, &s8), Framework::Flink, presets::terasort_config(55));
    bench_cell(c, "fig9_terasort_resources/spark_55n", terasort::plan(Framework::Spark, &s8), Framework::Spark, presets::terasort_config(55));
}

fn fig10_fig11_kmeans(c: &mut Criterion) {
    let s = KMeansScale::paper();
    let cells: Vec<_> = [8u32, 14, 20, 24]
        .iter()
        .map(|&n| {
            (
                n as f64,
                kmeans::plan(Framework::Spark, &s),
                kmeans::plan(Framework::Flink, &s),
                presets::kmeans_config(n),
            )
        })
        .collect();
    print_figure("fig11", "K-Means - increasing cluster size (1.2B samples)", "Nodes", &cells);
    bench_cell(c, "fig10_kmeans_resources/flink_24n", kmeans::plan(Framework::Flink, &s), Framework::Flink, presets::kmeans_config(24));
    bench_cell(c, "fig11_kmeans_scaling/spark_24n", kmeans::plan(Framework::Spark, &s), Framework::Spark, presets::kmeans_config(24));
}

fn fig12_to_fig15_graphs(c: &mut Criterion) {
    let pr_small = GraphScale::small(20);
    let cells12: Vec<_> = [8u32, 14, 20, 27]
        .iter()
        .map(|&n| {
            (
                n as f64,
                pagerank::plan(Framework::Spark, &pr_small),
                pagerank::plan(Framework::Flink, &pr_small),
                presets::small_graph_config(n),
            )
        })
        .collect();
    print_figure("fig12", "Page Rank - Small Graph", "Nodes", &cells12);

    let pr_medium = GraphScale::medium(20);
    let cells13: Vec<_> = [24u32, 27, 34, 55]
        .iter()
        .map(|&n| {
            (
                n as f64,
                pagerank::plan(Framework::Spark, &pr_medium),
                pagerank::plan(Framework::Flink, &pr_medium),
                presets::medium_graph_config(n),
            )
        })
        .collect();
    print_figure("fig13", "Page Rank - Medium Graph", "Nodes", &cells13);

    let cc_small = GraphScale::small(23);
    let cells14: Vec<_> = [8u32, 14, 20, 27]
        .iter()
        .map(|&n| {
            (
                n as f64,
                connected::plan(Framework::Spark, &cc_small, CcVariant::Delta),
                connected::plan(Framework::Flink, &cc_small, CcVariant::Delta),
                presets::small_graph_config(n),
            )
        })
        .collect();
    print_figure("fig14", "Connected Components - Small Graph", "Nodes", &cells14);

    let cc_medium = GraphScale::medium(23);
    let cells15: Vec<_> = [27u32, 34, 55]
        .iter()
        .map(|&n| {
            (
                n as f64,
                connected::plan(Framework::Spark, &cc_medium, CcVariant::Delta),
                connected::plan(Framework::Flink, &cc_medium, CcVariant::Delta),
                presets::medium_graph_config(n),
            )
        })
        .collect();
    print_figure("fig15", "Connected Components - Medium Graph", "Nodes", &cells15);

    bench_cell(
        c,
        "fig16_pagerank_resources/flink_27n",
        pagerank::plan(Framework::Flink, &pr_small),
        Framework::Flink,
        presets::small_graph_config(27),
    );
    bench_cell(
        c,
        "fig17_cc_resources/spark_27n",
        connected::plan(Framework::Spark, &cc_medium, CcVariant::Delta),
        Framework::Spark,
        presets::medium_graph_config(27),
    );
}

fn table7_large_graph(c: &mut Criterion) {
    // Print Table VII via the harness, then bench the 97-node PR cell.
    let cal = Calibration::default();
    println!("\n== table7 — Large graph (Table VII) ==");
    for r in flowmark_harness::experiments::table7(&cal).expect("valid experiment config") {
        println!(
            "| {} | Flink PR {}/{} | Spark PR {}/{} | Flink CC {}/{} | Spark CC {}/{} |",
            r.nodes,
            r.flink_pr.0.render(),
            r.flink_pr.1.render(),
            r.spark_pr.0.render(),
            r.spark_pr.1.render(),
            r.flink_cc.0.render(),
            r.flink_cc.1.render(),
            r.spark_cc.0.render(),
            r.spark_cc.1.render(),
        );
    }
    let pr = GraphScale::large(5);
    bench_cell(
        c,
        "table7_large_graph/spark_pr_97n",
        pagerank::plan(Framework::Spark, &pr),
        Framework::Spark,
        presets::large_graph_config(97),
    );
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = fig1_wordcount_weak, fig2_wordcount_strong, fig3_wordcount_resources,
              fig4_fig5_grep, fig7_fig8_terasort, fig10_fig11_kmeans,
              fig12_to_fig15_graphs, table7_large_graph
}
criterion_main!(figures);
