//! Design-choice ablations (DESIGN.md §3): each prints its paper-vs-sim
//! comparison once, then benchmarks the underlying simulation.

use criterion::{criterion_group, criterion_main, Criterion};

use flowmark_harness::experiments;
use flowmark_sim::Calibration;

fn ablation_delta_vs_bulk(c: &mut Criterion) {
    let cal = Calibration::default();
    let (bulk, delta) = experiments::ablation_delta(&cal).expect("valid experiment config");
    println!(
        "\n== abl-delta: CC Medium 27n — bulk {bulk:.0}s vs delta {delta:.0}s ({:.2}x; \
         paper: delta drives the up-to-30% CC advantage) ==",
        bulk / delta
    );
    c.bench_function("ablation/delta_vs_bulk", |b| {
        b.iter(|| experiments::ablation_delta(&cal))
    });
}

fn ablation_serializer(c: &mut Criterion) {
    let cal = Calibration::default();
    let (java, kryo) = experiments::ablation_serializer(&cal).expect("valid experiment config");
    println!(
        "\n== abl-serde: Spark WC 16n — Java {java:.0}s vs Kryo {kryo:.0}s \
         (§IV-D: Kryo \"can be more efficient\") =="
    );
    c.bench_function("ablation/serializer", |b| {
        b.iter(|| experiments::ablation_serializer(&cal))
    });
}

fn ablation_parallelism(c: &mut Criterion) {
    let cal = Calibration::default();
    let (tuned, reduced) = experiments::ablation_parallelism(&cal).expect("valid experiment config");
    println!(
        "\n== abl-par: Spark WC 8n — tuned {tuned:.0}s vs 2×cores {reduced:.0}s \
         ({:+.1}%; paper: +10% — see EXPERIMENTS.md for the known deviation) ==",
        (reduced - tuned) / tuned * 100.0
    );
    c.bench_function("ablation/parallelism", |b| {
        b.iter(|| experiments::ablation_parallelism(&cal))
    });
}

fn ablation_terasort_memory(c: &mut Criterion) {
    let cal = Calibration::default();
    let (s, f) = experiments::ablation_terasort_memory(&cal).expect("valid experiment config");
    println!(
        "\n== abl-mem: TeraSort 27n × 75 GB/node, 102 GB memory — Spark {s:.0}s vs \
         Flink {f:.0}s ({:.1}% gain; paper: 15%) ==",
        (s - f) / s * 100.0
    );
    c.bench_function("ablation/terasort_memory", |b| {
        b.iter(|| experiments::ablation_terasort_memory(&cal))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_delta_vs_bulk, ablation_serializer, ablation_parallelism,
              ablation_terasort_memory
}
criterion_main!(ablations);
