//! # flowmark-bench
//!
//! Benchmark support code. The actual Criterion targets live in
//! `benches/`:
//!
//! - `figures` — one benchmark group per paper figure/table; each group
//!   prints the regenerated series (the paper's rows) once, then measures
//!   the simulator's per-trial cost;
//! - `engine_micro` — microbenchmarks of the real engines' substrates
//!   (sort-combine buffer, partitioners, shuffles, end-to-end Word Count);
//! - `ablations` — the design-choice ablations from DESIGN.md (delta vs
//!   bulk iterations, serializer choice, parallelism, TeraSort memory).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use flowmark_core::config::Framework;
use flowmark_core::experiment::Experiment;
use flowmark_core::report::figure_markdown;
use flowmark_dataflow::plan::LogicalPlan;
use flowmark_sim::{simulate, Calibration, SimError};

/// Runs one simulated trial of a plan (the unit the figure benches time).
pub fn one_trial(
    plan: &LogicalPlan,
    fw: Framework,
    run: &flowmark_core::config::RunConfig,
    seed: u64,
) -> Result<f64, SimError> {
    let cal = Calibration::default();
    simulate(plan, fw, run, &cal, seed).map(|r| r.seconds)
}

/// Regenerates a whole figure (both engines, 5 trials per cell) and prints
/// its markdown rows — called once per bench target so `cargo bench`
/// reproduces the paper's tables as a side effect.
pub fn print_figure(
    id: &str,
    title: &str,
    x_label: &str,
    cells: &[(f64, LogicalPlan, LogicalPlan, flowmark_core::config::RunConfig)],
) {
    let cal = Calibration::default();
    let mut exp = Experiment::new(id, title, x_label);
    for (x, spark_plan, flink_plan, run) in cells {
        for trial in 0..5u64 {
            let s = simulate(spark_plan, Framework::Spark, run, &cal, trial + 1).expect("valid");
            let f = simulate(flink_plan, Framework::Flink, run, &cal, trial + 1).expect("valid");
            exp.record(Framework::Spark, *x, s.seconds);
            exp.record(Framework::Flink, *x, f.seconds);
        }
    }
    println!("\n== {id} — {title} ==");
    print!("{}", figure_markdown(&exp.figure()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmark_workloads::presets;
    use flowmark_workloads::wordcount::{plan, WordCountScale};

    #[test]
    fn one_trial_runs() {
        let scale = WordCountScale::per_node(4, 24.0);
        let run = presets::wordcount_config(4);
        for fw in Framework::BOTH {
            let t = one_trial(&plan(fw, &scale), fw, &run, 1).unwrap();
            assert!(t > 0.0);
        }
    }
}
