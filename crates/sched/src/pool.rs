//! Shared work-stealing core pool.
//!
//! A [`TaskPool`] owns a fixed set of worker threads, each with its own
//! deque. Engines submit a whole stage as one *batch* of closures via
//! [`TaskPool::run_batch`]: tasks are distributed round-robin across the
//! worker deques, workers pop from the front of their own deque and
//! steal from the back of a victim's when idle, and the submitting
//! thread *helps* — it executes tasks of its own batch while waiting —
//! so a stage submitted from inside a pool task (nested shuffles do
//! this) always has at least one thread driving it and the pool cannot
//! deadlock on its own fixed size.
//!
//! Panics inside tasks are caught per-task; the first payload is
//! re-raised on the submitting thread only after every task of the
//! batch has finished, mirroring the join-then-`resume_unwind` contract
//! of the scoped-thread spawning this pool replaces (typed payloads
//! like `JobCancelled` / `IntegrityError` cross intact).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A type-erased, heap-allocated task. Lifetimes are erased at the
/// `run_batch` boundary (see the safety argument there).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared completion state for one submitted batch.
struct BatchState {
    /// Tasks not yet finished (decremented *after* the closure returns
    /// or its panic is captured — the lifetime-erasure safety hinges on
    /// this ordering).
    remaining: AtomicUsize,
    /// First captured panic payload, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    stolen: AtomicU64,
    queue_wait_micros: AtomicU64,
}

struct Task {
    run: Job,
    batch: Arc<BatchState>,
    enqueued: Instant,
}

struct PoolState {
    /// One deque per worker thread. Owners pop the front, thieves pop
    /// the back.
    deques: Vec<VecDeque<Task>>,
    /// Round-robin submission cursor.
    next: usize,
    stop: bool,
}

struct Inner {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    workers: usize,
    tasks_executed: AtomicU64,
    tasks_stolen: AtomicU64,
    queue_wait_micros: AtomicU64,
    batches: AtomicU64,
}

/// Aggregate counters for a pool since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fixed worker-thread count.
    pub workers: u64,
    /// Batches submitted through [`TaskPool::run_batch`].
    pub batches: u64,
    /// Tasks executed to completion (including by helping submitters).
    pub tasks_executed: u64,
    /// Tasks taken from a deque other than the executing worker's own.
    pub tasks_stolen: u64,
    /// Total microseconds tasks spent queued before execution began.
    pub queue_wait_micros: u64,
}

/// Per-batch counters returned by [`TaskPool::run_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tasks in the batch.
    pub tasks: u64,
    /// How many of them were executed via a steal.
    pub tasks_stolen: u64,
    /// Summed queue wait across the batch's tasks, in microseconds.
    pub queue_wait_micros: u64,
}

/// A fixed-size work-stealing thread pool shared across jobs.
pub struct TaskPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Task panics are caught outside any pool lock, so poison can only
    // arise from a panic in pool bookkeeping itself; recover the guard
    // rather than cascading.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TaskPool {
    /// Start a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState {
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                next: 0,
                stop: false,
            }),
            work_cv: Condvar::new(),
            workers,
            tasks_executed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            queue_wait_micros: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flowmark-pool-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        TaskPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide shared pool both engines submit stages to when
    /// `ExecutorMode::SharedPool` is selected. Sized to the machine's
    /// available parallelism (at least 2 so stealing is meaningful).
    pub fn global() -> &'static TaskPool {
        static POOL: OnceLock<TaskPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            TaskPool::new(cores.max(2))
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Execute `tasks` on the pool and block until all of them finish.
    ///
    /// The submitting thread helps: while waiting it pulls tasks *of
    /// this batch* from the deques and runs them inline, so the batch
    /// always progresses even when every worker is busy (or when the
    /// submitter itself is a pool worker running a nested stage).
    ///
    /// If any task panics, the first payload is re-raised here after
    /// the whole batch has drained.
    ///
    /// Tasks may borrow from the caller's stack (`'s`): this is sound
    /// because the closure's lifetime is only erased, never extended —
    /// `run_batch` does not return until `remaining == 0`, and
    /// `remaining` is decremented strictly after a task's closure has
    /// returned or had its panic captured, so no borrowed data is
    /// touched after this frame resumes.
    pub fn run_batch<'s>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 's>>) -> BatchStats {
        let n = tasks.len();
        if n == 0 {
            return BatchStats::default();
        }
        self.inner.batches.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::new(BatchState {
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            stolen: AtomicU64::new(0),
            queue_wait_micros: AtomicU64::new(0),
        });
        let enqueued = Instant::now();
        {
            let mut st = lock_ignore_poison(&self.inner.state);
            for t in tasks {
                // SAFETY: see the doc comment — the erased closure is
                // guaranteed dead before this stack frame is released.
                let run: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Job>(t)
                };
                let w = st.next % self.inner.workers;
                st.next = st.next.wrapping_add(1);
                st.deques[w].push_back(Task {
                    run,
                    batch: Arc::clone(&batch),
                    enqueued,
                });
            }
            self.inner.work_cv.notify_all();
        }
        // Caller-helps loop: run our own tasks until none are queued,
        // then wait for in-flight ones to finish elsewhere.
        loop {
            if batch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let task = {
                let mut st = lock_ignore_poison(&self.inner.state);
                take_for_batch(&mut st, &batch)
            };
            match task {
                Some(t) => execute(&self.inner, t, false),
                None => {
                    let mut done = lock_ignore_poison(&batch.done);
                    while !*done && batch.remaining.load(Ordering::Acquire) > 0 {
                        let (g, _) = batch
                            .done_cv
                            .wait_timeout(done, Duration::from_millis(50))
                            .unwrap_or_else(|e| e.into_inner());
                        done = g;
                    }
                }
            }
        }
        if let Some(p) = lock_ignore_poison(&batch.panic).take() {
            resume_unwind(p);
        }
        BatchStats {
            tasks: n as u64,
            tasks_stolen: batch.stolen.load(Ordering::Relaxed),
            queue_wait_micros: batch.queue_wait_micros.load(Ordering::Relaxed),
        }
    }

    /// Counters since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.inner.workers as u64,
            batches: self.inner.batches.load(Ordering::Relaxed),
            tasks_executed: self.inner.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.inner.tasks_stolen.load(Ordering::Relaxed),
            queue_wait_micros: self.inner.queue_wait_micros.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut st = lock_ignore_poison(&self.inner.state);
            st.stop = true;
            self.inner.work_cv.notify_all();
        }
        for h in lock_ignore_poison(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

/// Remove the oldest queued task belonging to `batch`, if any.
fn take_for_batch(st: &mut PoolState, batch: &Arc<BatchState>) -> Option<Task> {
    for dq in st.deques.iter_mut() {
        if let Some(pos) = dq.iter().position(|t| Arc::ptr_eq(&t.batch, batch)) {
            return dq.remove(pos);
        }
    }
    None
}

fn execute(inner: &Inner, task: Task, stolen: bool) {
    let wait = task.enqueued.elapsed().as_micros() as u64;
    inner.queue_wait_micros.fetch_add(wait, Ordering::Relaxed);
    task.batch
        .queue_wait_micros
        .fetch_add(wait, Ordering::Relaxed);
    if stolen {
        inner.tasks_stolen.fetch_add(1, Ordering::Relaxed);
        task.batch.stolen.fetch_add(1, Ordering::Relaxed);
    }
    inner.tasks_executed.fetch_add(1, Ordering::Relaxed);
    let batch = Arc::clone(&task.batch);
    let result = catch_unwind(AssertUnwindSafe(task.run));
    if let Err(payload) = result {
        let mut slot = lock_ignore_poison(&batch.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    // Everything the closure borrowed is dead from here on; only now
    // may the submitting frame be released.
    if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = lock_ignore_poison(&batch.done);
        *done = true;
        batch.done_cv.notify_all();
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    let mut st = lock_ignore_poison(&inner.state);
    loop {
        if st.stop {
            return;
        }
        // Own deque first (front = oldest), then steal from the back of
        // the first non-empty victim, scanning round-robin from me+1.
        let mut found: Option<(Task, bool)> = None;
        if let Some(t) = st.deques[me].pop_front() {
            found = Some((t, false));
        } else {
            for off in 1..inner.workers {
                let v = (me + off) % inner.workers;
                if let Some(t) = st.deques[v].pop_back() {
                    found = Some((t, true));
                    break;
                }
            }
        }
        match found {
            Some((task, stolen)) => {
                drop(st);
                execute(inner, task, stolen);
                st = lock_ignore_poison(&inner.state);
            }
            None => {
                let (g, _) = inner
                    .work_cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn batch_runs_all_tasks_and_can_borrow_the_stack() {
        let pool = TaskPool::new(3);
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let stats = pool.run_batch(tasks);
        assert_eq!(stats.tasks, 64);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.stats().tasks_executed, 64);
    }

    #[test]
    fn panic_payload_crosses_the_pool_after_the_batch_drains() {
        let pool = TaskPool::new(2);
        let ran = Arc::new(AtomicU32::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        std::panic::panic_any("typed payload");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)))
            .expect_err("payload must propagate");
        std::panic::set_hook(hook);
        assert_eq!(*err.downcast_ref::<&str>().expect("str payload"), "typed payload");
        // Every sibling still ran to completion before the unwind.
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_batches_cannot_deadlock_a_saturated_pool() {
        // 1 worker + nested submission: only the caller-helps protocol
        // lets the inner batch make progress.
        let pool = TaskPool::new(1);
        let total = Arc::new(AtomicU32::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let total = Arc::clone(&total);
                let pool = &pool;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            let total = Arc::clone(&total);
                            Box::new(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            })
                                as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_batch(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn idle_workers_steal_queued_tasks() {
        let pool = TaskPool::new(4);
        // Many short batches from one submitter: round-robin placement
        // spreads tasks across all four deques while only one submitter
        // helps, so idle workers must steal to drain them.
        for _ in 0..32 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
                .map(|_| {
                    Box::new(|| {
                        std::thread::sleep(Duration::from_micros(200));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }
        let stats = pool.stats();
        assert_eq!(stats.tasks_executed, 32 * 16);
        assert!(stats.tasks_stolen >= 1, "expected steals, got {stats:?}");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = TaskPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            (0..4).map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>).collect();
        pool.run_batch(tasks);
        drop(pool); // must not hang
    }
}
