//! Fingerprint-keyed cross-job fragment cache.
//!
//! `tune`'s run cache memoises *whole trial runs* inside one tuning
//! session, keyed by config fingerprint. This generalizes the idea
//! across jobs and tenants: a **fragment** is the materialized, sealed
//! output of a stage (the engines store the PR 7 `Sealed<B>` batches —
//! digest + batch), keyed by everything that could change its bytes:
//!
//! - `plan` — fingerprint of the plan prefix that produced the stage
//!   (which workload, which stage boundary);
//! - `input` — the dataset seed the plan prefix consumed;
//! - `config` — `EngineConfig::fingerprint()` (parallelism, buffers,
//!   partitioner… all change routing and therefore bytes);
//! - `faults` — `FaultConfig::fingerprint()`; two jobs under different
//!   fault plans must **miss**, not alias, because injected corruption
//!   and checksum seeds differ.
//!
//! The cache itself is engine-agnostic: it stores `Arc<dyn Any>` and
//! never inspects payloads. **Trust stays with the reader** — engines
//! re-verify the PR 7 checksum of every cached batch at reuse time and
//! call [`FragmentCache::invalidate`] on mismatch, so a rotten cache
//! entry degrades to a recompute, never a wrong answer.
//!
//! Capacity is byte-denominated with LRU eviction. An optional
//! [`BytesLedger`] charges resident bytes against an external budget
//! (the serve `MemoryBudget`), so cached fragments compete with
//! admitted jobs for the same memory envelope.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// External byte accounting a cache can charge its residency against.
///
/// `flowmark-serve` implements this for `MemoryBudget`; tests use a
/// plain atomic. Implementations must be cheap and lock-free-ish: the
/// cache calls them while holding its own lock.
pub trait BytesLedger: Send + Sync {
    /// Try to reserve `bytes`; `false` means the budget refused.
    fn try_reserve_bytes(&self, bytes: u64) -> bool;
    /// Return `bytes` previously reserved.
    fn release_bytes(&self, bytes: u64);
}

/// Identity of a cached fragment. Equal keys ⇒ byte-identical sealed
/// stage output (given the engines' deterministic execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Plan-prefix fingerprint (workload + stage boundary).
    pub plan: u64,
    /// Input dataset seed consumed by the prefix.
    pub input: u64,
    /// `EngineConfig::fingerprint()` of the producing job.
    pub config: u64,
    /// `FaultConfig::fingerprint()` of the producing job.
    pub faults: u64,
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    tick: u64,
}

struct CacheInner {
    map: HashMap<FragmentKey, Entry>,
    bytes_used: u64,
    tick: u64,
}

/// Counter snapshot for reporting (see `repro soak --mix-concurrent`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentCacheStats {
    /// Lookups that found a fragment (before engine re-verification).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Fragments stored.
    pub insertions: u64,
    /// Fragments evicted to make room.
    pub evictions: u64,
    /// Fragments removed because re-verification failed.
    pub invalidations: u64,
    /// Resident fragment count.
    pub entries: u64,
    /// Resident bytes.
    pub bytes_used: u64,
}

/// Byte-budgeted LRU cache of type-erased stage fragments.
pub struct FragmentCache {
    budget_bytes: u64,
    ledger: Option<Arc<dyn BytesLedger>>,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FragmentCache {
    /// A cache holding at most `budget_bytes` of fragment payload.
    pub fn new(budget_bytes: u64) -> Self {
        Self::build(budget_bytes, None)
    }

    /// Like [`FragmentCache::new`], additionally charging resident
    /// bytes against `ledger`. If the ledger refuses a reservation even
    /// after the cache has evicted everything, the insert is skipped —
    /// the cache never overdraws the shared budget.
    pub fn with_ledger(budget_bytes: u64, ledger: Arc<dyn BytesLedger>) -> Self {
        Self::build(budget_bytes, Some(ledger))
    }

    fn build(budget_bytes: u64, ledger: Option<Arc<dyn BytesLedger>>) -> Self {
        FragmentCache {
            budget_bytes,
            ledger,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes_used: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up a fragment, refreshing its recency on hit. The caller
    /// (an engine) must re-verify checksums before trusting the value.
    pub fn get(&self, key: &FragmentKey) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut inner = lock_ignore_poison(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a fragment of `bytes` payload bytes, evicting LRU entries
    /// until it fits the byte budget (and the ledger accepts the
    /// charge). Returns the number of evictions performed. A fragment
    /// larger than the whole budget is not cached.
    pub fn insert(
        &self,
        key: FragmentKey,
        value: Arc<dyn Any + Send + Sync>,
        bytes: u64,
    ) -> u64 {
        if bytes > self.budget_bytes {
            return 0;
        }
        let mut inner = lock_ignore_poison(&self.inner);
        let mut evicted = 0;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes_used -= old.bytes;
            self.release_ledger(old.bytes);
        }
        while inner.bytes_used + bytes > self.budget_bytes {
            if !self.evict_lru(&mut inner) {
                break;
            }
            evicted += 1;
        }
        if let Some(ledger) = &self.ledger {
            while !ledger.try_reserve_bytes(bytes) {
                if !self.evict_lru(&mut inner) {
                    // Budget is contended by live jobs and the cache is
                    // already empty: skip caching rather than overdraw.
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                    return evicted;
                }
                evicted += 1;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.bytes_used += bytes;
        inner.map.insert(key, Entry { value, bytes, tick });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Remove every fragment and return the whole ledger reservation.
    /// Not counted as evictions — clearing is a lifecycle event, not a
    /// pressure signal.
    pub fn clear(&self) {
        let mut inner = lock_ignore_poison(&self.inner);
        inner.map.clear();
        let bytes = std::mem::take(&mut inner.bytes_used);
        drop(inner);
        self.release_ledger(bytes);
    }

    /// Drop a fragment whose re-verification failed.
    pub fn invalidate(&self, key: &FragmentKey) {
        let mut inner = lock_ignore_poison(&self.inner);
        if let Some(entry) = inner.map.remove(key) {
            inner.bytes_used -= entry.bytes;
            self.release_ledger(entry.bytes);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evict the least-recently-used entry; `false` if the cache is
    /// empty.
    fn evict_lru(&self, inner: &mut CacheInner) -> bool {
        let victim = inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k);
        match victim {
            Some(k) => {
                if let Some(entry) = inner.map.remove(&k) {
                    inner.bytes_used -= entry.bytes;
                    self.release_ledger(entry.bytes);
                }
                true
            }
            None => false,
        }
    }

    fn release_ledger(&self, bytes: u64) {
        if let Some(ledger) = &self.ledger {
            ledger.release_bytes(bytes);
        }
    }
}

impl Drop for FragmentCache {
    /// Return any outstanding reservation to the ledger so a cache that
    /// dies with a shared `MemoryBudget` leaves it balanced.
    fn drop(&mut self) {
        let bytes = std::mem::take(&mut lock_ignore_poison(&self.inner).bytes_used);
        self.release_ledger(bytes);
    }
}

impl FragmentCache {
    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> FragmentCacheStats {
        let inner = lock_ignore_poison(&self.inner);
        FragmentCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: inner.map.len() as u64,
            bytes_used: inner.bytes_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> FragmentKey {
        FragmentKey {
            plan: n,
            input: 1,
            config: 2,
            faults: 3,
        }
    }

    #[test]
    fn hit_returns_the_stored_value_and_key_fields_all_discriminate() {
        let cache = FragmentCache::new(1 << 20);
        cache.insert(key(1), Arc::new(vec![1u64, 2, 3]), 24);
        let got = cache.get(&key(1)).expect("hit");
        let v = got.downcast_ref::<Vec<u64>>().expect("typed");
        assert_eq!(v, &vec![1, 2, 3]);
        for miss in [
            FragmentKey { plan: 9, ..key(1) },
            FragmentKey { input: 9, ..key(1) },
            FragmentKey { config: 9, ..key(1) },
            FragmentKey { faults: 9, ..key(1) },
        ] {
            assert!(cache.get(&miss).is_none(), "{miss:?} must miss");
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 4));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let cache = FragmentCache::new(100);
        cache.insert(key(1), Arc::new(1u8), 40);
        cache.insert(key(2), Arc::new(2u8), 40);
        cache.get(&key(1)); // refresh 1 → 2 is now LRU
        let evicted = cache.insert(key(3), Arc::new(3u8), 40);
        assert_eq!(evicted, 1);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU victim");
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.stats().bytes_used <= 100);
    }

    #[test]
    fn oversized_fragment_is_not_cached() {
        let cache = FragmentCache::new(10);
        assert_eq!(cache.insert(key(1), Arc::new(0u8), 11), 0);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let cache = FragmentCache::new(100);
        cache.insert(key(1), Arc::new(0u8), 10);
        cache.invalidate(&key(1));
        assert!(cache.get(&key(1)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.bytes_used, 0);
    }

    #[test]
    fn ledger_is_charged_and_released() {
        struct Ledger {
            used: AtomicU64,
            cap: u64,
        }
        impl BytesLedger for Ledger {
            fn try_reserve_bytes(&self, bytes: u64) -> bool {
                let mut cur = self.used.load(Ordering::Relaxed);
                loop {
                    if cur + bytes > self.cap {
                        return false;
                    }
                    match self.used.compare_exchange(
                        cur,
                        cur + bytes,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(seen) => cur = seen,
                    }
                }
            }
            fn release_bytes(&self, bytes: u64) {
                self.used.fetch_sub(bytes, Ordering::Relaxed);
            }
        }
        let ledger = Arc::new(Ledger {
            used: AtomicU64::new(0),
            cap: 50,
        });
        let cache = FragmentCache::with_ledger(1 << 20, Arc::clone(&ledger) as Arc<dyn BytesLedger>);
        cache.insert(key(1), Arc::new(0u8), 30);
        assert_eq!(ledger.used.load(Ordering::Relaxed), 30);
        // 30 resident + 30 requested > 50 cap → the cache evicts its own
        // LRU entry to satisfy the ledger rather than overdrawing.
        cache.insert(key(2), Arc::new(0u8), 30);
        assert_eq!(ledger.used.load(Ordering::Relaxed), 30);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        // Ledger full with the cache empty → insert skipped.
        ledger.used.store(45, Ordering::Relaxed);
        cache.invalidate(&key(2));
        assert_eq!(ledger.used.load(Ordering::Relaxed), 15);
        let cache2 = FragmentCache::with_ledger(1 << 20, Arc::new(Ledger {
            used: AtomicU64::new(50),
            cap: 50,
        }) as Arc<dyn BytesLedger>);
        assert_eq!(cache2.insert(key(9), Arc::new(0u8), 10), 0);
        assert_eq!(cache2.stats().entries, 0);
    }
}
