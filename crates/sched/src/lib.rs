//! # flowmark-sched
//!
//! The multi-tenant scheduling substrate shared by both engines.
//!
//! Up to PR 7 every job span spawned its own threads: the staged engine
//! fanned each stage out through the rayon shim (one scoped thread per
//! chunk, per call), the pipelined engine spawned one scoped thread per
//! partition per operator. That is faithful to how a single job runs,
//! but "Performance Characterization of In-Memory Data Analytics on a
//! Modern Cloud Server" observes that these frameworks leave cores idle
//! across phases — headroom a *shared* pool with work stealing reclaims
//! once many small jobs coexist. This crate provides:
//!
//! - [`TaskPool`] — a fixed set of worker threads with per-worker deques
//!   and steal-on-idle. Engines submit whole stages as *batches* of
//!   borrowed closures ([`TaskPool::run_batch`]); the submitting thread
//!   helps execute its own batch while it waits, so nested stages (a
//!   shuffle materialising inside a pool task) can always make progress
//!   and the pool cannot deadlock on itself.
//! - [`FragmentCache`] — a fingerprint-keyed, byte-budgeted LRU over
//!   materialized sealed stage outputs, generalizing `tune`'s per-run
//!   config cache across jobs and tenants. The cache stores opaque
//!   `Arc<dyn Any>` fragments; *verification stays with the engines*
//!   (the PR 7 checksum is re-checked at reuse time before a hit is
//!   trusted), and eviction can be charged against an external byte
//!   ledger (the serve `MemoryBudget`) via [`BytesLedger`].
//!
//! Fair-share admission (deficit round robin over tenant lanes) lives in
//! `flowmark-serve`, which owns the queue types; this crate stays free
//! of job/service types so both engines can depend on it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod fragcache;
pub mod pool;

pub use fragcache::{BytesLedger, FragmentCache, FragmentCacheStats, FragmentKey};
pub use pool::{BatchStats, PoolStats, TaskPool};
