//! Property tests for the deficit-round-robin fair queue: no backlogged
//! lane is ever starved. Two bounds are asserted over arbitrary tenant
//! tables and job mixes:
//!
//! * **per-pop rounds** — one `pop` never spins more than
//!   `ceil(max_cost / (quantum * min_weight)) + 1` credit rounds, because
//!   every completed round credits every backlogged lane;
//! * **inter-pop gap** — a lane that stays backlogged is popped again
//!   within a bound computed from the other lanes' burst sizes: each
//!   cursor arrival grants a lane at most `quantum * weight` fresh
//!   credit, so it can pop at most `(quantum * weight + max_cost) /
//!   min_cost` jobs before yielding, and the waiting lane is credited at
//!   least once per full rotation.

use proptest::prelude::*;

use flowmark_core::config::{FairShareConfig, TenantSpec};
use flowmark_serve::FairQueue;

/// A lane spec plus its queued job costs.
#[derive(Debug, Clone)]
struct LanePlan {
    weight: u32,
    costs: Vec<u64>,
}

const QUANTUM: u64 = 16;

fn arb_lanes() -> impl Strategy<Value = Vec<LanePlan>> {
    prop::collection::vec(
        (1u32..4, prop::collection::vec(1u64..3 * QUANTUM, 1..12))
            .prop_map(|(weight, costs)| LanePlan { weight, costs }),
        2..5,
    )
}

fn build(lanes: &[LanePlan]) -> (FairShareConfig, FairQueue<usize>) {
    let fair = FairShareConfig {
        tenants: lanes
            .iter()
            .enumerate()
            .map(|(i, l)| TenantSpec {
                tenant: i as u32,
                weight: l.weight,
                memory_budget_bytes: u64::MAX,
                max_in_flight: usize::MAX,
            })
            .collect(),
        quantum_bytes: QUANTUM,
    };
    let total: usize = lanes.iter().map(|l| l.costs.len()).sum();
    let mut q = FairQueue::new(&fair, total);
    for (i, lane) in lanes.iter().enumerate() {
        for &cost in &lane.costs {
            q.push(i, cost, i).expect("queue sized for every job");
        }
    }
    (fair, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Draining an arbitrary backlog pops every job, each pop's round
    /// count stays within the credit bound, and no lane waits more than
    /// the rotation bound between pops while it is still backlogged.
    #[test]
    fn drr_never_starves_a_backlogged_lane(lanes in arb_lanes()) {
        let (_, mut q) = build(&lanes);
        let n = lanes.len();
        let total: usize = lanes.iter().map(|l| l.costs.len()).sum();
        let max_cost = lanes.iter().flat_map(|l| l.costs.iter()).copied().max().unwrap_or(1);
        let min_cost = lanes.iter().flat_map(|l| l.costs.iter()).copied().min().unwrap_or(1);
        let min_weight = lanes.iter().map(|l| l.weight).min().unwrap_or(1) as u64;
        let round_bound = max_cost.div_ceil(QUANTUM * min_weight) + 1;
        // A lane's burst per cursor arrival is limited by its single
        // grant plus any banked remainder, or by simply running dry.
        let burst = |l: &LanePlan| -> u64 {
            let by_credit = (QUANTUM * u64::from(l.weight) + max_cost).div_ceil(min_cost);
            by_credit.min(l.costs.len() as u64)
        };
        let total_burst: u64 = lanes.iter().map(burst).sum();
        let gap_bound = (round_bound + 1) * total_burst;

        let mut remaining: Vec<usize> = lanes.iter().map(|l| l.costs.len()).collect();
        // Pops since each lane was last served, counted only while the
        // lane stays backlogged.
        let mut waited = vec![0u64; n];
        let mut pops = 0usize;
        while let Some((lane, item, rounds)) = q.pop_with_rounds() {
            prop_assert_eq!(lane, item, "items were tagged with their lane");
            prop_assert!(
                rounds <= round_bound,
                "pop took {} rounds, bound is {}", rounds, round_bound
            );
            remaining[lane] -= 1;
            waited[lane] = 0;
            for l in 0..n {
                if l != lane && remaining[l] > 0 {
                    waited[l] += 1;
                    prop_assert!(
                        waited[l] <= gap_bound,
                        "lane {} backlogged for {} pops, bound is {}", l, waited[l], gap_bound
                    );
                }
            }
            // In-flight slots are released immediately so caps (here
            // unbounded anyway) never mask scheduling starvation.
            q.job_finished(lane);
            pops += 1;
            prop_assert!(pops <= total, "drained more jobs than were queued");
        }
        prop_assert_eq!(pops, total, "every queued job must eventually pop");
        prop_assert!(remaining.iter().all(|&r| r == 0));
    }

    /// Weighted shares hold under contention: with two always-backlogged
    /// equal-cost lanes, the heavier lane pops at least its proportional
    /// share (within one rotation of slack) over any drain prefix.
    #[test]
    fn drr_weight_ratio_bounds_the_share(
        heavy in 2u32..5,
        jobs_per_lane in 8usize..24,
    ) {
        let lanes = vec![
            LanePlan { weight: heavy, costs: vec![QUANTUM; jobs_per_lane] },
            LanePlan { weight: 1, costs: vec![QUANTUM; jobs_per_lane] },
        ];
        let (_, mut q) = build(&lanes);
        let mut served = [0usize; 2];
        // While both lanes are backlogged, the heavy lane must stay
        // within one round of its weighted share.
        while served[1] < jobs_per_lane && served[0] < jobs_per_lane {
            let Some((lane, _, _)) = q.pop_with_rounds() else { break };
            served[lane] += 1;
            q.job_finished(lane);
            let expected_heavy =
                (served[0] + served[1]) * heavy as usize / (heavy as usize + 1);
            prop_assert!(
                served[0] + 1 + heavy as usize >= expected_heavy,
                "heavy lane served {} of {}, expected about {}",
                served[0], served[0] + served[1], expected_heavy
            );
        }
    }
}
