//! Per-engine circuit breaker: consecutive-failure threshold → open →
//! seeded half-open probe.
//!
//! A poisoned engine configuration (every job on it failing) must not
//! keep consuming queue slots, memory budget and retry time. After
//! `threshold` consecutive failures the breaker opens and sheds that
//! engine's submissions with `Rejected::BreakerOpen`. The open state is
//! **count-based**, not wall-clock-based: after a seeded number of shed
//! submissions the breaker goes half-open and admits exactly one probe
//! job — success closes it, failure re-opens it. Counting rejections
//! instead of elapsed time keeps soak runs deterministic for a fixed seed.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Observable breaker state, exported in health snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: submissions pass through.
    Closed,
    /// Shedding: submissions are rejected until the cooldown elapses.
    Open,
    /// One probe job is in flight; its outcome decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Rejections served since the breaker last opened.
    shed_while_open: u32,
    /// Rejections the current open period requires before half-open.
    cooldown_target: u32,
    /// How many times the breaker has opened (salts the seeded cooldown).
    openings: u64,
}

/// A consecutive-failure circuit breaker for one engine.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    seed: u64,
    inner: Mutex<BreakerInner>,
}

/// splitmix64, the workspace-standard deterministic bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CircuitBreaker {
    /// A closed breaker opening after `threshold` consecutive failures and
    /// probing after a seeded `[cooldown, 2×cooldown]` shed submissions.
    pub fn new(threshold: u32, cooldown: u32, seed: u64) -> Self {
        assert!(threshold > 0, "threshold 0 would never close");
        Self {
            threshold,
            cooldown,
            seed,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                shed_while_open: 0,
                cooldown_target: 0,
                openings: 0,
            }),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Gate for one submission: `true` admits (closed, or the half-open
    /// probe slot), `false` sheds. An open breaker counts the rejection
    /// toward its cooldown and flips to half-open when the seeded target
    /// is reached — the *next* submission after the flip is the probe.
    pub fn admit(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // probe already in flight
            BreakerState::Open => {
                inner.shed_while_open += 1;
                if inner.shed_while_open >= inner.cooldown_target {
                    // Cooldown served: admit this submission as the probe.
                    inner.state = BreakerState::HalfOpen;
                    return true;
                }
                false
            }
        }
    }

    /// Reports a job success on this engine.
    pub fn on_success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        if inner.state == BreakerState::HalfOpen {
            inner.state = BreakerState::Closed;
        }
    }

    /// Reports a job failure on this engine.
    pub fn on_failure(&self) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::HalfOpen => Self::open(&mut inner, self.seed, self.cooldown),
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    Self::open(&mut inner, self.seed, self.cooldown);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn open(inner: &mut BreakerInner, seed: u64, cooldown: u32) {
        inner.state = BreakerState::Open;
        inner.consecutive_failures = 0;
        inner.shed_while_open = 0;
        inner.openings += 1;
        // Seeded jitter on the cooldown length: [cooldown, 2×cooldown],
        // deterministic per (seed, opening number).
        let span = u64::from(cooldown.max(1));
        let jitter = splitmix(seed ^ inner.openings) % (span + 1);
        inner.cooldown_target = cooldown.max(1) + jitter as u32;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, 2, 1);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(2, 2, 1);
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_sheds_then_admits_one_probe() {
        let b = CircuitBreaker::new(1, 2, 42);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Shed until the seeded cooldown target (within [2, 4]) is served.
        let mut sheds = 0;
        while !b.admit() {
            sheds += 1;
            assert!(sheds <= 4, "cooldown must end within 2×cooldown sheds");
        }
        assert!(sheds >= 1, "an open breaker sheds before probing");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, 1, 7);
        b.on_failure();
        while !b.admit() {}
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_is_deterministic_per_seed() {
        let sheds_for = |seed: u64| {
            let b = CircuitBreaker::new(1, 3, seed);
            b.on_failure();
            let mut sheds = 0u32;
            while !b.admit() {
                sheds += 1;
            }
            sheds
        };
        assert_eq!(sheds_for(9), sheds_for(9));
    }
}
