//! Job descriptions, handles, and terminal resolutions.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use flowmark_core::config::{EngineConfig, Framework};
use flowmark_engine::faults::CancelToken;

/// The work a job performs: called once per attempt with the attempt
/// number and the job-level cancellation token. The closure builds its own
/// engine context (threading the token into
/// `SparkContext::with_config_faults_cancel` /
/// `FlinkEnv::with_config_faults_cancel`), runs the workload, verifies the
/// result, and returns `Err` with a message on a detected divergence.
/// Panics unwinding out of the closure are caught by the worker and
/// classified: a `JobCancelled` payload resolves the job as cancelled or
/// timed out, anything else consumes one unit of retry budget.
pub type JobFn = Arc<dyn Fn(u32, &CancelToken) -> Result<(), String> + Send + Sync>;

/// Liveness SLO for long-running streaming tenants.
///
/// Completion-based supervision (deadline, retries) cannot watch a job
/// that is *supposed* to run forever: a streaming tenant whose upstream
/// stalls never finishes and never fails — it just falls behind. The SLO
/// watches a shared watermark-lag gauge (the streaming runtime's
/// `StreamJobConfig::lag_gauge`, in ticks) from the attempt watchdog: when
/// the lag stays above `max_lag_ticks` for `grace_polls` consecutive
/// watchdog slices, the job is cancelled and resolved as **Failed** — not
/// Cancelled — so the engine's circuit breaker counts the violation.
#[derive(Clone)]
pub struct LivenessSlo {
    /// The watermark-lag gauge the streaming job updates, in ticks.
    pub lag: Arc<AtomicU64>,
    /// Largest tolerable watermark lag, in ticks.
    pub max_lag_ticks: u64,
    /// Consecutive watchdog polls (2 ms apart) the lag must stay above
    /// the ceiling before the SLO fires — absorbs transient spikes.
    pub grace_polls: u32,
}

impl std::fmt::Debug for LivenessSlo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivenessSlo")
            .field("lag", &self.lag.load(std::sync::atomic::Ordering::Relaxed))
            .field("max_lag_ticks", &self.max_lag_ticks)
            .field("grace_polls", &self.grace_polls)
            .finish()
    }
}

/// A unit of work submitted to the [`crate::JobService`].
#[derive(Clone)]
pub struct JobRequest {
    /// Human-readable label carried into reports.
    pub name: String,
    /// Tenant this job bills against; must name a lane of the service's
    /// `FairShareConfig`. The default tenant 0 is the single lane of
    /// the default (FIFO-equivalent) policy.
    pub tenant: u32,
    /// Which engine the job runs on (selects the circuit breaker).
    pub engine: Framework,
    /// The engine configuration the job will run under; its
    /// [`EngineConfig::memory_footprint_bytes`] is the admission charge.
    pub config: EngineConfig,
    /// Per-job deadline override; `None` takes the service default.
    pub deadline: Option<Duration>,
    /// Per-job retry-budget override; `None` takes the service default.
    pub retry_budget: Option<u32>,
    /// Optional liveness SLO for long-running (streaming) jobs.
    pub liveness: Option<LivenessSlo>,
    /// The attempt body.
    pub run: JobFn,
}

impl JobRequest {
    /// A request with service-default deadline and retry budget.
    pub fn new(
        name: impl Into<String>,
        engine: Framework,
        config: EngineConfig,
        run: JobFn,
    ) -> Self {
        Self {
            name: name.into(),
            tenant: 0,
            engine,
            config,
            deadline: None,
            retry_budget: None,
            liveness: None,
            run,
        }
    }

    /// The same request billed to `tenant`.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The same request supervised by a liveness SLO.
    pub fn with_liveness(mut self, slo: LivenessSlo) -> Self {
        self.liveness = Some(slo);
        self
    }
}

/// Why a submission was refused at admission time. Load shedding is always
/// explicit and typed — a job is never silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded job queue is full.
    QueueFull {
        /// Tenant whose submission was shed.
        tenant: u32,
    },
    /// Admitting the job would overcommit the byte-denominated memory
    /// budget — the service-wide one, or the named tenant's own.
    OverBudget {
        /// Tenant whose submission was shed.
        tenant: u32,
        /// Bytes the job's config would pin.
        needed: u64,
        /// Bytes currently uncommitted in the refusing budget.
        available: u64,
    },
    /// The target engine's circuit breaker is open.
    BreakerOpen {
        /// Tenant whose submission was shed.
        tenant: u32,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown {
        /// Tenant whose submission was shed.
        tenant: u32,
    },
    /// The request names a tenant absent from the service's fair-share
    /// tenant table.
    UnknownTenant {
        /// The unrecognized tenant id.
        tenant: u32,
    },
}

impl Rejected {
    /// The tenant whose submission was refused.
    pub fn tenant(&self) -> u32 {
        match self {
            Rejected::QueueFull { tenant }
            | Rejected::OverBudget { tenant, .. }
            | Rejected::BreakerOpen { tenant }
            | Rejected::ShuttingDown { tenant }
            | Rejected::UnknownTenant { tenant } => *tenant,
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { tenant } => write!(f, "queue full (tenant {tenant})"),
            Rejected::OverBudget {
                tenant,
                needed,
                available,
            } => {
                write!(
                    f,
                    "over budget (tenant {tenant}, needed {needed} B, available {available} B)"
                )
            }
            Rejected::BreakerOpen { tenant } => {
                write!(f, "circuit breaker open (tenant {tenant})")
            }
            Rejected::ShuttingDown { tenant } => {
                write!(f, "service shutting down (tenant {tenant})")
            }
            Rejected::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
        }
    }
}

/// How an *admitted* job ended. Together with [`Rejected`] this is the
/// exhaustive set of outcomes — every submission resolves to exactly one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// The job ran to completion (possibly after retries).
    Completed {
        /// Attempts consumed, 1-based.
        attempts: u32,
    },
    /// Every attempt failed and the retry budget is exhausted.
    Failed {
        /// Attempts consumed, 1-based.
        attempts: u32,
        /// The final attempt's error.
        error: String,
    },
    /// The deadline expired and the job was cancelled cooperatively.
    TimedOut,
    /// The job was cancelled explicitly via [`JobHandle::cancel`].
    Cancelled,
}

/// Shared slot the worker fills and the handle waits on.
pub(crate) struct JobCell {
    pub(crate) cancel: CancelToken,
    state: Mutex<Option<Resolution>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn new(cancel: CancelToken) -> Self {
        Self {
            cancel,
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    pub(crate) fn resolve(&self, resolution: Resolution) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(resolution);
        self.done.notify_all();
    }

    pub(crate) fn wait(&self) -> Resolution {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resolution) = guard.as_ref() {
                return resolution.clone();
            }
            guard = self.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn peek(&self) -> Option<Resolution> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Caller-side handle to an admitted job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("resolution", &self.cell.peek())
            .finish()
    }
}

impl JobHandle {
    /// Requests cooperative cancellation: in-flight tasks unwind at their
    /// next cancellation point, queued jobs resolve without running.
    pub fn cancel(&self) {
        self.cell.cancel.set();
    }

    /// Blocks until the job resolves.
    pub fn wait(&self) -> Resolution {
        self.cell.wait()
    }

    /// Non-blocking look at the resolution, if any.
    pub fn resolution(&self) -> Option<Resolution> {
        self.cell.peek()
    }
}
