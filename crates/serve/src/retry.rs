//! Job-level retry policy: exponential backoff with deterministic jitter.
//!
//! This layers *above* PR 2's task-level recovery: `run_recoverable`
//! retries a single task inside one job attempt, while this schedule
//! paces whole-job re-submissions after an attempt fails outright. Jitter
//! is a pure function of `(seed, job, attempt)` via splitmix64 — the same
//! discipline the fault plan uses — so a soak run replays byte-identically
//! for a fixed seed.

use std::time::Duration;

/// Deterministic exponential-backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct BackoffSchedule {
    /// First-retry delay cap.
    pub base: Duration,
    /// Upper bound on any delay.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

/// splitmix64, the workspace-standard deterministic bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl BackoffSchedule {
    /// Builds a schedule; `cap` is clamped up to at least `base` so the
    /// envelope is always well-formed.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap: cap.max(base),
            seed,
        }
    }

    /// Envelope for retry number `retry` (1-based): `min(cap, base ×
    /// 2^(retry-1))`. Monotone non-decreasing in `retry` by construction.
    pub fn envelope(&self, retry: u32) -> Duration {
        let doubled = self
            .base
            .saturating_mul(2u32.saturating_pow(retry.saturating_sub(1).min(32)));
        doubled.min(self.cap)
    }

    /// The actual delay before retry `retry` of job `job`: a
    /// deterministically jittered point in `[envelope/2, envelope]`,
    /// clamped so the sleep never outlives `remaining` (the time left
    /// until the job's deadline).
    pub fn delay(&self, job: u64, retry: u32, remaining: Duration) -> Duration {
        let envelope = self.envelope(retry);
        let half = envelope / 2;
        let span_ns = envelope.saturating_sub(half).as_nanos() as u64;
        let jitter_ns = if span_ns == 0 {
            0
        } else {
            splitmix(self.seed ^ splitmix(job ^ u64::from(retry))) % (span_ns + 1)
        };
        (half + Duration::from_nanos(jitter_ns)).min(remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> BackoffSchedule {
        BackoffSchedule::new(Duration::from_millis(4), Duration::from_millis(64), 77)
    }

    #[test]
    fn envelope_doubles_until_the_cap() {
        let s = schedule();
        assert_eq!(s.envelope(1), Duration::from_millis(4));
        assert_eq!(s.envelope(2), Duration::from_millis(8));
        assert_eq!(s.envelope(5), Duration::from_millis(64));
        assert_eq!(s.envelope(40), Duration::from_millis(64), "capped");
    }

    #[test]
    fn delay_is_deterministic_and_inside_the_envelope() {
        let s = schedule();
        for job in 0..20u64 {
            for retry in 1..6u32 {
                let d = s.delay(job, retry, Duration::from_secs(10));
                assert_eq!(d, s.delay(job, retry, Duration::from_secs(10)));
                assert!(d <= s.envelope(retry));
                assert!(d >= s.envelope(retry) / 2);
            }
        }
    }

    #[test]
    fn delay_never_exceeds_the_remaining_deadline() {
        let s = schedule();
        let remaining = Duration::from_millis(3);
        for retry in 1..8u32 {
            assert!(s.delay(9, retry, remaining) <= remaining);
        }
        assert_eq!(s.delay(9, 3, Duration::ZERO), Duration::ZERO);
    }
}
