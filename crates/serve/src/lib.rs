//! # flowmark-serve
//!
//! The job-level robustness layer above both engines: a supervised,
//! multi-tenant job runner implementing the supervisor/backpressure shape
//! any serving stack needs on the road to the ROADMAP's "serve heavy
//! traffic" north star.
//!
//! PR 2 made a *single job* survive task kills, stragglers and memory
//! pressure (lineage re-execution, checkpointed region restarts,
//! speculation). This crate supervises *many jobs*:
//!
//! - **admission control** ([`admission`]) — a byte-denominated memory
//!   budget charged from `EngineConfig::memory_footprint_bytes`, plus a
//!   bounded multi-tenant queue with **deficit-round-robin** dequeue
//!   (per-tenant weights, byte budgets and in-flight caps, starvation-
//!   free by construction); refusals are typed [`Rejected`] values that
//!   name the refused tenant, never silent drops;
//! - **deadlines + cooperative cancellation** ([`service`]) — every job
//!   carries a `CancelToken`; a watchdog fires it on deadline expiry and
//!   [`JobHandle::cancel`] fires it on demand, after which engine task
//!   loops unwind with a `JobCancelled` payload, channels drain, and the
//!   job's budget is released;
//! - **retry with deterministic backoff** ([`retry`]) — exponential
//!   envelope, splitmix jitter, per-job retry budget, never sleeping past
//!   the deadline;
//! - **per-engine circuit breakers** ([`breaker`]) — consecutive-failure
//!   threshold, count-based seeded cooldown, half-open probe;
//! - **health snapshots** ([`health`]) — queue depth, in-flight count,
//!   budget occupancy, breaker states and outcome counters, serializable
//!   next to `MetricsSnapshot`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod admission;
pub mod breaker;
pub mod health;
pub mod job;
pub mod retry;
pub mod service;

pub use admission::{FairQueue, LaneDepth, MemoryBudget};
pub use breaker::{BreakerState, CircuitBreaker};
pub use health::{HealthSnapshot, TenantHealth};
pub use job::{JobFn, JobHandle, JobRequest, LivenessSlo, Rejected, Resolution};
pub use retry::BackoffSchedule;
pub use service::JobService;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use flowmark_core::config::{
        EngineConfig, FairShareConfig, Framework, ServiceConfig, TenantSpec,
    };

    use super::*;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 8,
            memory_budget_bytes: 64 << 30,
            default_deadline_ms: 5_000,
            retry_budget: 1,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            seed: 7,
            breaker_threshold: 2,
            breaker_cooldown: 1,
            workers: 2,
        }
    }

    fn ok_job(name: &str) -> JobRequest {
        JobRequest::new(
            name,
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, _| Ok(())),
        )
    }

    #[test]
    fn jobs_complete_and_the_service_drains() {
        let service = JobService::start(tiny_config());
        let handles: Vec<_> = (0..5)
            .map(|i| service.submit(ok_job(&format!("job-{i}"))).expect("admitted"))
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), Resolution::Completed { attempts: 1 });
        }
        let final_health = service.shutdown();
        assert!(final_health.drained(), "all jobs accounted: {final_health:?}");
        assert_eq!(final_health.budget_in_use_bytes, 0);
        assert_eq!(final_health.jobs_completed, 5);
    }

    #[test]
    fn failing_job_retries_then_succeeds() {
        let service = JobService::start(tiny_config());
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let job = JobRequest::new(
            "flaky",
            Framework::Flink,
            EngineConfig::default(),
            Arc::new(move |attempt, _| {
                seen.fetch_add(1, Ordering::Relaxed);
                if attempt == 0 {
                    Err("first attempt poisoned".into())
                } else {
                    Ok(())
                }
            }),
        );
        let handle = service.submit(job).expect("admitted");
        assert_eq!(handle.wait(), Resolution::Completed { attempts: 2 });
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        let health = service.shutdown();
        assert_eq!(health.job_retries, 1);
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let service = JobService::start(tiny_config());
        let job = JobRequest::new(
            "doomed",
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, _| Err("always fails".into())),
        );
        let handle = service.submit(job).expect("admitted");
        match handle.wait() {
            Resolution::Failed { attempts, error } => {
                assert_eq!(attempts, 2, "1 try + 1 retry");
                assert_eq!(error, "always fails");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn escalated_integrity_error_is_a_named_typed_failure() {
        flowmark_engine::faults::install_quiet_hook();
        let service = JobService::start(tiny_config());
        let job = JobRequest::new(
            "rotten",
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, _| {
                // A corruption that survived the engine's retry budget
                // escapes run_recoverable as a typed panic payload.
                std::panic::panic_any(flowmark_engine::faults::IntegrityError {
                    at: (3, 1, 4),
                    detail: "checksum mismatch survived the retry budget",
                })
            }),
        );
        let handle = service.submit(job).expect("admitted");
        match handle.wait() {
            Resolution::Failed { error, .. } => {
                assert!(
                    error.contains("integrity failure at stage 3 partition 1 attempt 4"),
                    "{error}"
                );
                assert!(error.contains("checksum mismatch"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn deadline_expiry_times_the_job_out() {
        let service = JobService::start(tiny_config());
        let mut job = JobRequest::new(
            "slow",
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, cancel: &flowmark_engine::CancelToken| {
                cancel.sleep(Duration::from_secs(30));
                // A cooperative body surfaces the cancel as teardown.
                flowmark_engine::faults::check_cancelled(
                    cancel,
                    &flowmark_engine::EngineMetrics::new(),
                    0,
                    0,
                );
                Ok(())
            }),
        );
        job.deadline = Some(Duration::from_millis(50));
        let started = Instant::now();
        let handle = service.submit(job).expect("admitted");
        assert_eq!(handle.wait(), Resolution::TimedOut);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must not wait for the 30 s sleep"
        );
        let health = service.shutdown();
        assert_eq!(health.jobs_timed_out, 1);
        assert_eq!(health.budget_in_use_bytes, 0);
    }

    #[test]
    fn explicit_cancel_resolves_cancelled() {
        let service = JobService::start(tiny_config());
        let job = JobRequest::new(
            "cancel-me",
            Framework::Flink,
            EngineConfig::default(),
            Arc::new(|_, cancel: &flowmark_engine::CancelToken| {
                cancel.sleep(Duration::from_secs(30));
                flowmark_engine::faults::check_cancelled(
                    cancel,
                    &flowmark_engine::EngineMetrics::new(),
                    0,
                    0,
                );
                Ok(())
            }),
        );
        let handle = service.submit(job).expect("admitted");
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
        assert_eq!(handle.wait(), Resolution::Cancelled);
        let health = service.shutdown();
        assert_eq!(health.jobs_cancelled, 1);
    }

    #[test]
    fn queue_overflow_sheds_with_queue_full() {
        let mut cfg = tiny_config();
        cfg.queue_capacity = 1;
        cfg.workers = 1;
        let service = JobService::start(cfg);
        // One long job occupies the worker; the queue then takes exactly 1.
        let blocker = JobRequest::new(
            "blocker",
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, cancel: &flowmark_engine::CancelToken| {
                cancel.sleep(Duration::from_millis(300));
                Ok(())
            }),
        );
        let b = service.submit(blocker).expect("admitted");
        std::thread::sleep(Duration::from_millis(30)); // let the worker claim it
        let _queued = service.submit(ok_job("queued")).expect("fits in queue");
        let shed = service.submit(ok_job("shed"));
        assert!(matches!(shed, Err(Rejected::QueueFull { tenant: 0 })), "{shed:?}");
        b.cancel();
        let health = service.shutdown();
        assert_eq!(health.jobs_shed, 1);
        assert!(health.drained());
    }

    #[test]
    fn over_budget_sheds_typed() {
        let mut cfg = tiny_config();
        cfg.memory_budget_bytes = 1; // nothing fits
        let service = JobService::start(cfg);
        match service.submit(ok_job("fat")) {
            Err(Rejected::OverBudget { available, .. }) => assert_eq!(available, 1),
            other => panic!("expected OverBudget, got {other:?}"),
        }
        let health = service.shutdown();
        assert_eq!(health.jobs_shed, 1);
        assert_eq!(health.jobs_admitted, 0);
    }

    #[test]
    fn consecutive_failures_open_the_breaker_then_probe_heals_it() {
        let mut cfg = tiny_config();
        cfg.workers = 1;
        cfg.retry_budget = 0;
        let service = JobService::start(cfg);
        let fail = |name: &str| {
            JobRequest::new(
                name,
                Framework::Spark,
                EngineConfig::default(),
                Arc::new(|_, _| Err("poisoned".into())),
            )
        };
        for i in 0..2 {
            let h = service.submit(fail(&format!("bad-{i}"))).expect("admitted");
            h.wait();
        }
        assert_eq!(service.health().spark_breaker, BreakerState::Open);
        // The other engine is unaffected.
        let ok_flink = JobRequest::new(
            "healthy",
            Framework::Flink,
            EngineConfig::default(),
            Arc::new(|_, _| Ok(())),
        );
        assert!(service.submit(ok_flink).is_ok());
        // Shed against the open breaker until the seeded cooldown admits a
        // healthy probe, which closes it.
        let mut breaker_sheds = 0;
        loop {
            match service.submit(ok_job("probe")) {
                Ok(h) => {
                    assert_eq!(h.wait(), Resolution::Completed { attempts: 1 });
                    break;
                }
                Err(Rejected::BreakerOpen { .. }) => breaker_sheds += 1,
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
            assert!(breaker_sheds <= 4, "cooldown must end");
        }
        assert_eq!(service.health().spark_breaker, BreakerState::Closed);
        let health = service.shutdown();
        assert!(health.breaker_rejections >= 1);
        assert!(health.drained());
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let service = JobService::start(tiny_config());
        let health = service.shutdown();
        assert!(health.drained());
        // A fresh service refuses after shutdown is initiated — modelled
        // here by the accepting flag, exercised via the soak harness; the
        // typed variant exists:
        assert_eq!(
            Rejected::ShuttingDown { tenant: 3 }.to_string(),
            "service shutting down (tenant 3)"
        );
    }

    #[test]
    fn liveness_slo_fails_a_lagging_streaming_tenant() {
        use std::sync::atomic::AtomicU64;
        let mut cfg = tiny_config();
        cfg.retry_budget = 0;
        cfg.breaker_threshold = 1;
        let service = JobService::start(cfg);
        let lag = Arc::new(AtomicU64::new(0));
        let gauge = Arc::clone(&lag);
        let job = JobRequest::new(
            "stalled-stream",
            Framework::Flink,
            EngineConfig::default(),
            Arc::new(move |_, cancel: &flowmark_engine::CancelToken| {
                // A long-running tenant whose watermark stops advancing:
                // lag climbs and stays above the ceiling.
                gauge.store(10_000, Ordering::Release);
                cancel.sleep(Duration::from_secs(30));
                flowmark_engine::faults::check_cancelled(
                    cancel,
                    &flowmark_engine::EngineMetrics::new(),
                    0,
                    0,
                );
                Ok(())
            }),
        )
        .with_liveness(LivenessSlo {
            lag,
            max_lag_ticks: 500,
            grace_polls: 3,
        });
        let started = Instant::now();
        let handle = service.submit(job).expect("admitted");
        match handle.wait() {
            Resolution::Failed { error, .. } => {
                assert!(error.contains("liveness SLO violated"), "{error}");
                assert!(error.contains("10000 > 500"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "SLO must not wait out the 30 s park"
        );
        // The violation counts as an engine failure: threshold 1 opens
        // the breaker.
        assert_eq!(service.health().flink_breaker, BreakerState::Open);
        let health = service.shutdown();
        assert_eq!(health.jobs_failed, 1);
        assert_eq!(health.jobs_cancelled, 0, "SLO resolves Failed, not Cancelled");
    }

    #[test]
    fn healthy_stream_under_slo_completes_normally() {
        use std::sync::atomic::AtomicU64;
        let service = JobService::start(tiny_config());
        let lag = Arc::new(AtomicU64::new(0));
        let job = JobRequest::new(
            "healthy-stream",
            Framework::Spark,
            EngineConfig::default(),
            Arc::new(|_, _| {
                std::thread::sleep(Duration::from_millis(30));
                Ok(())
            }),
        )
        .with_liveness(LivenessSlo {
            lag,
            max_lag_ticks: 500,
            grace_polls: 3,
        });
        let handle = service.submit(job).expect("admitted");
        assert_eq!(handle.wait(), Resolution::Completed { attempts: 1 });
        service.shutdown();
    }

    #[test]
    fn fair_share_tracks_tenants_and_rejects_unknown_ones() {
        let fair = FairShareConfig {
            tenants: vec![
                TenantSpec::unbounded(1),
                TenantSpec {
                    weight: 2,
                    ..TenantSpec::unbounded(2)
                },
            ],
            quantum_bytes: FairShareConfig::DEFAULT_QUANTUM_BYTES,
        };
        let service = JobService::start_fair(tiny_config(), fair);
        match service.submit(ok_job("stranger").with_tenant(9)) {
            Err(Rejected::UnknownTenant { tenant: 9 }) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tenant = 1 + (i % 2) as u32;
                service
                    .submit(ok_job(&format!("t{tenant}-{i}")).with_tenant(tenant))
                    .expect("admitted")
            })
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), Resolution::Completed { attempts: 1 });
        }
        let health = service.shutdown();
        assert!(health.drained());
        assert_eq!(health.tenants.len(), 2);
        for t in &health.tenants {
            assert_eq!(t.admitted, 2, "tenant {}", t.tenant);
            assert_eq!(t.completed, 2, "tenant {}", t.tenant);
            assert_eq!((t.queued, t.in_flight), (0, 0));
        }
        assert_eq!(health.tenants[0].rejected + health.tenants[1].rejected, 0);
    }

    #[test]
    fn tenant_budget_sheds_independently_of_the_service_budget() {
        let fair = FairShareConfig {
            tenants: vec![
                TenantSpec {
                    memory_budget_bytes: 1, // nothing fits
                    ..TenantSpec::unbounded(1)
                },
                TenantSpec::unbounded(2),
            ],
            quantum_bytes: FairShareConfig::DEFAULT_QUANTUM_BYTES,
        };
        let service = JobService::start_fair(tiny_config(), fair);
        match service.submit(ok_job("fat").with_tenant(1)) {
            Err(Rejected::OverBudget { tenant: 1, available: 1, .. }) => {}
            other => panic!("expected tenant OverBudget, got {other:?}"),
        }
        // The shed released its service-wide reservation; tenant 2 fits.
        let h = service
            .submit(ok_job("fine").with_tenant(2))
            .expect("admitted");
        assert_eq!(h.wait(), Resolution::Completed { attempts: 1 });
        let health = service.shutdown();
        assert_eq!(health.budget_in_use_bytes, 0);
        let t1 = health.tenants.iter().find(|t| t.tenant == 1).expect("lane");
        assert_eq!((t1.admitted, t1.rejected), (0, 1));
    }

    #[test]
    fn in_flight_cap_limits_tenant_concurrency() {
        let fair = FairShareConfig {
            tenants: vec![TenantSpec {
                max_in_flight: 1,
                ..TenantSpec::unbounded(0)
            }],
            quantum_bytes: FairShareConfig::DEFAULT_QUANTUM_BYTES,
        };
        let mut cfg = tiny_config();
        cfg.workers = 4;
        let service = JobService::start_fair(cfg, fair);
        let live = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let (live, peak) = (Arc::clone(&live), Arc::clone(&peak));
                let job = JobRequest::new(
                    format!("capped-{i}"),
                    Framework::Spark,
                    EngineConfig::default(),
                    Arc::new(move |_, _| {
                        let now = live.fetch_add(1, Ordering::AcqRel) + 1;
                        peak.fetch_max(now, Ordering::AcqRel);
                        std::thread::sleep(Duration::from_millis(10));
                        live.fetch_sub(1, Ordering::AcqRel);
                        Ok(())
                    }),
                );
                service.submit(job).expect("admitted")
            })
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), Resolution::Completed { attempts: 1 });
        }
        assert_eq!(
            peak.load(Ordering::Acquire),
            1,
            "cap of 1 must serialize the tenant's jobs despite 4 workers"
        );
        assert!(service.shutdown().drained());
    }
}
