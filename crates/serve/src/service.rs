//! The supervisor: a bounded worker pool draining a FIFO queue of
//! admitted jobs, enforcing deadlines by cooperative cancellation and
//! pacing whole-job retries with deterministic backoff.
//!
//! State machine of one submission:
//!
//! ```text
//! submitted ── admission ──► queued ──► running ──► done
//!     │ QueueFull/OverBudget/            │  │  ▲       (Completed/Failed)
//!     │ BreakerOpen/ShuttingDown         │  │  └─ retrying (backoff)
//!     ▼                                  │  ▼
//!   shed (typed Rejected)                │ timed-out (deadline → cancel)
//!                                        ▼
//!                                    cancelled (explicit cancel)
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flowmark_core::config::{FairShareConfig, Framework, ServiceConfig};
use flowmark_engine::faults::{install_quiet_hook, CancelToken, JobCancelled};

use crate::admission::{FairQueue, MemoryBudget};
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::health::{HealthSnapshot, TenantHealth};
use crate::job::{JobCell, JobHandle, JobRequest, Rejected, Resolution};
use crate::retry::BackoffSchedule;

/// Watchdog polling slice while an attempt runs.
const WATCHDOG_SLICE: Duration = Duration::from_millis(2);

struct QueuedJob {
    id: u64,
    /// Lane index into the fair-share tenant table.
    lane: usize,
    request: JobRequest,
    cell: Arc<JobCell>,
    /// Bytes reserved against the memory budget at admission.
    charge: u64,
    /// When the job entered the queue (feeds per-tenant queue-wait).
    enqueued: Instant,
}

#[derive(Default)]
struct OutcomeCounters {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    retries: AtomicU64,
    breaker_rejections: AtomicU64,
}

/// Per-tenant slice of the outcome counters, indexed by lane.
#[derive(Default)]
struct TenantCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    queue_wait_micros: AtomicU64,
}

struct ServiceInner {
    cfg: ServiceConfig,
    fair: FairShareConfig,
    backoff: BackoffSchedule,
    queue: Mutex<FairQueue<QueuedJob>>,
    queue_cv: Condvar,
    /// Service-wide budget, shared with the fragment cache (the ledger
    /// side of [`crate::admission::MemoryBudget`]).
    budget: Arc<MemoryBudget>,
    /// Per-tenant budgets, indexed by lane.
    tenant_budgets: Vec<MemoryBudget>,
    tenant_counters: Vec<TenantCounters>,
    spark_breaker: CircuitBreaker,
    flink_breaker: CircuitBreaker,
    in_flight: AtomicUsize,
    accepting: AtomicBool,
    stop: AtomicBool,
    next_job: AtomicU64,
    counters: OutcomeCounters,
}

impl ServiceInner {
    fn breaker(&self, engine: Framework) -> &CircuitBreaker {
        match engine {
            Framework::Spark => &self.spark_breaker,
            Framework::Flink => &self.flink_breaker,
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, FairQueue<QueuedJob>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn snapshot(&self) -> HealthSnapshot {
        let (queue_depth, depths) = {
            let queue = self.lock_queue();
            (queue.len(), queue.depths())
        };
        let tenants = depths
            .into_iter()
            .enumerate()
            .map(|(lane, d)| TenantHealth {
                tenant: d.tenant,
                queued: d.queued,
                in_flight: d.in_flight,
                budget_in_use_bytes: self.tenant_budgets[lane].in_use(),
                admitted: self.tenant_counters[lane].admitted.load(Ordering::Relaxed),
                rejected: self.tenant_counters[lane].rejected.load(Ordering::Relaxed),
                completed: self.tenant_counters[lane].completed.load(Ordering::Relaxed),
                queue_wait_micros: self.tenant_counters[lane]
                    .queue_wait_micros
                    .load(Ordering::Relaxed),
            })
            .collect();
        HealthSnapshot {
            queue_depth,
            in_flight: self.in_flight.load(Ordering::Acquire),
            budget_in_use_bytes: self.budget.in_use(),
            budget_capacity_bytes: self.budget.capacity(),
            spark_breaker: self.spark_breaker.state(),
            flink_breaker: self.flink_breaker.state(),
            jobs_admitted: self.counters.admitted.load(Ordering::Relaxed),
            jobs_shed: self.counters.shed.load(Ordering::Relaxed),
            jobs_completed: self.counters.completed.load(Ordering::Relaxed),
            jobs_failed: self.counters.failed.load(Ordering::Relaxed),
            jobs_timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            jobs_cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            job_retries: self.counters.retries.load(Ordering::Relaxed),
            breaker_rejections: self.counters.breaker_rejections.load(Ordering::Relaxed),
            tenants,
        }
    }
}

/// The supervised multi-tenant job runner. Owns its worker threads;
/// [`JobService::shutdown`] drains the queue, joins every worker, and
/// proves the budget returned to zero.
pub struct JobService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Starts the service with the default fair-share policy — one
    /// unbounded tenant 0, which makes the DRR dequeue byte-for-byte
    /// equivalent to the old FIFO queue.
    pub fn start(cfg: ServiceConfig) -> Self {
        Self::start_fair(cfg, FairShareConfig::default())
    }

    /// Starts the service with an explicit fair-share tenant table:
    /// validates both configs and spawns the worker pool. Panics on a
    /// degenerate config (the same contract as the engine constructors).
    pub fn start_fair(cfg: ServiceConfig, fair: FairShareConfig) -> Self {
        cfg.validate().expect("invalid service config");
        fair.validate().expect("invalid fair-share config");
        // Job teardown unwinds with JobCancelled payloads; keep them off
        // stderr like injected faults.
        install_quiet_hook();
        let inner = Arc::new(ServiceInner {
            backoff: BackoffSchedule::new(
                Duration::from_millis(cfg.backoff_base_ms),
                Duration::from_millis(cfg.backoff_cap_ms),
                cfg.seed,
            ),
            queue: Mutex::new(FairQueue::new(&fair, cfg.queue_capacity)),
            queue_cv: Condvar::new(),
            budget: Arc::new(MemoryBudget::new(cfg.memory_budget_bytes)),
            tenant_budgets: fair
                .tenants
                .iter()
                .map(|t| MemoryBudget::new(t.memory_budget_bytes))
                .collect(),
            tenant_counters: fair.tenants.iter().map(|_| TenantCounters::default()).collect(),
            spark_breaker: CircuitBreaker::new(
                cfg.breaker_threshold,
                cfg.breaker_cooldown,
                cfg.seed ^ 0x5A,
            ),
            flink_breaker: CircuitBreaker::new(
                cfg.breaker_threshold,
                cfg.breaker_cooldown,
                cfg.seed ^ 0xF1,
            ),
            in_flight: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            counters: OutcomeCounters::default(),
            cfg,
            fair,
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a job. A rejection is an explicit, typed shed — the job
    /// never entered the queue and holds no budget. Every refusal names
    /// the tenant it was billed against.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, Rejected> {
        let inner = &self.inner;
        let tenant = request.tenant;
        let lane = inner.fair.tenants.iter().position(|t| t.tenant == tenant);
        let shed = |why: Rejected| {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            if let Some(lane) = lane {
                inner.tenant_counters[lane]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
            }
            if matches!(why, Rejected::BreakerOpen { .. }) {
                inner
                    .counters
                    .breaker_rejections
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(why)
        };
        let Some(lane_idx) = lane else {
            return shed(Rejected::UnknownTenant { tenant });
        };
        if !inner.accepting.load(Ordering::Acquire) {
            return shed(Rejected::ShuttingDown { tenant });
        }
        let charge = request.config.memory_footprint_bytes();
        // Queue bound, budgets and breaker are checked under the queue
        // lock: a successful breaker probe admission is always followed by
        // a real enqueue, and admission order is the lock acquisition
        // order.
        let mut queue = inner.lock_queue();
        if queue.is_full() {
            drop(queue);
            return shed(Rejected::QueueFull { tenant });
        }
        if let Err(available) = inner.budget.try_reserve(charge) {
            drop(queue);
            return shed(Rejected::OverBudget {
                tenant,
                needed: charge,
                available,
            });
        }
        if let Err(available) = inner.tenant_budgets[lane_idx].try_reserve(charge) {
            inner.budget.release(charge);
            drop(queue);
            return shed(Rejected::OverBudget {
                tenant,
                needed: charge,
                available,
            });
        }
        if !inner.breaker(request.engine).admit() {
            inner.tenant_budgets[lane_idx].release(charge);
            inner.budget.release(charge);
            drop(queue);
            return shed(Rejected::BreakerOpen { tenant });
        }
        let cell = Arc::new(JobCell::new(CancelToken::new()));
        let job = QueuedJob {
            id: inner.next_job.fetch_add(1, Ordering::Relaxed),
            lane: lane_idx,
            request,
            cell: Arc::clone(&cell),
            charge,
            enqueued: Instant::now(),
        };
        queue
            .push(lane_idx, charge, job)
            .expect("capacity was checked under this lock");
        drop(queue);
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        inner.tenant_counters[lane_idx]
            .admitted
            .fetch_add(1, Ordering::Relaxed);
        inner.queue_cv.notify_one();
        Ok(JobHandle { cell })
    }

    /// The service-wide memory budget. The soak harness hands this to
    /// `FragmentCache::with_ledger` so cached fragments are charged
    /// against the same envelope admitted jobs reserve from.
    pub fn budget(&self) -> Arc<MemoryBudget> {
        Arc::clone(&self.inner.budget)
    }

    /// Current health/readiness snapshot.
    pub fn health(&self) -> HealthSnapshot {
        self.inner.snapshot()
    }

    /// Stops accepting work, waits for every queued and in-flight job to
    /// resolve, joins every worker thread, and returns the final
    /// snapshot. The caller can assert `snapshot.drained()` and
    /// `budget_in_use_bytes == 0` — the soak harness does.
    pub fn shutdown(self) -> HealthSnapshot {
        let JobService { inner, workers } = self;
        inner.accepting.store(false, Ordering::Release);
        {
            let mut queue = inner.lock_queue();
            while !(queue.is_empty() && inner.in_flight.load(Ordering::Acquire) == 0) {
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            inner.stop.store(true, Ordering::Release);
        }
        inner.queue_cv.notify_all();
        for worker in workers {
            worker.join().expect("worker threads never panic");
        }
        inner.snapshot()
    }
}

fn worker_loop(inner: &ServiceInner) {
    loop {
        let job = {
            let mut queue = inner.lock_queue();
            loop {
                // DRR dequeue; `None` covers both "no backlog" and
                // "every backlogged lane is at its in-flight cap" — in
                // either case the completion notify re-runs the pop.
                if let Some((lane, job)) = queue.pop() {
                    debug_assert_eq!(lane, job.lane);
                    // Claim in-flight status under the lock so a drain
                    // waiter never observes "queue empty, nothing running"
                    // while a job is in hand-off.
                    inner.in_flight.fetch_add(1, Ordering::AcqRel);
                    break job;
                }
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let waited = job.enqueued.elapsed();
        inner.tenant_counters[job.lane]
            .queue_wait_micros
            .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
        let resolution = execute(inner, &job);
        settle_breaker(inner.breaker(job.request.engine), &resolution);
        let counter = match &resolution {
            Resolution::Completed { .. } => {
                inner.tenant_counters[job.lane]
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                &inner.counters.completed
            }
            Resolution::Failed { .. } => &inner.counters.failed,
            Resolution::TimedOut => &inner.counters.timed_out,
            Resolution::Cancelled => &inner.counters.cancelled,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        inner.tenant_budgets[job.lane].release(job.charge);
        inner.budget.release(job.charge);
        job.cell.resolve(resolution);
        inner.in_flight.fetch_sub(1, Ordering::AcqRel);
        // Free the lane's in-flight slot under the lock, then notify:
        // a drain waiter between its condition check and its wait
        // cannot miss this wakeup, and a worker parked on a capped lane
        // re-runs its pop against the freed slot.
        inner.lock_queue().job_finished(job.lane);
        inner.queue_cv.notify_all();
    }
}

/// Feeds a job outcome into the engine's breaker. A missed deadline
/// counts as a failure (the engine did not deliver); an explicit cancel
/// is neutral — unless it consumed the half-open probe slot, which must
/// not stay wedged, so the breaker re-opens.
fn settle_breaker(breaker: &CircuitBreaker, resolution: &Resolution) {
    match resolution {
        Resolution::Completed { .. } => breaker.on_success(),
        Resolution::Failed { .. } | Resolution::TimedOut => breaker.on_failure(),
        Resolution::Cancelled => {
            if breaker.state() == BreakerState::HalfOpen {
                breaker.on_failure();
            }
        }
    }
}

/// Runs one job to resolution: attempts under a deadline watchdog, paced
/// whole-job retries, cooperative cancellation throughout.
fn execute(inner: &ServiceInner, job: &QueuedJob) -> Resolution {
    let cancel = &job.cell.cancel;
    let deadline_in = job
        .request
        .deadline
        .unwrap_or(Duration::from_millis(inner.cfg.default_deadline_ms));
    let deadline = Instant::now() + deadline_in;
    let retry_budget = job.request.retry_budget.unwrap_or(inner.cfg.retry_budget);
    let mut attempt = 0u32;
    loop {
        if cancel.is_set() {
            // Cancelled while queued or during backoff.
            return Resolution::Cancelled;
        }
        let deadline_fired = AtomicBool::new(false);
        let slo_fired = AtomicBool::new(false);
        let outcome = run_attempt(job, attempt, cancel, deadline, &deadline_fired, &slo_fired);
        let error = match outcome {
            Ok(Ok(())) => return Resolution::Completed { attempts: attempt + 1 },
            Ok(Err(message)) => message,
            Err(payload) => {
                if payload.downcast_ref::<JobCancelled>().is_some() || cancel.is_set() {
                    // A liveness violation is a *failure*, not a cancel:
                    // the tenant fell behind its SLO, and the breaker must
                    // count it like any other engine failure.
                    if slo_fired.load(Ordering::Acquire) {
                        let slo = job.request.liveness.as_ref().expect("slo fired");
                        return Resolution::Failed {
                            attempts: attempt + 1,
                            error: format!(
                                "liveness SLO violated: watermark lag {} > {} ticks",
                                slo.lag.load(Ordering::Acquire),
                                slo.max_lag_ticks
                            ),
                        };
                    }
                    return if deadline_fired.load(Ordering::Acquire) {
                        Resolution::TimedOut
                    } else {
                        Resolution::Cancelled
                    };
                }
                describe_panic(&payload)
            }
        };
        if attempt >= retry_budget {
            return Resolution::Failed {
                attempts: attempt + 1,
                error,
            };
        }
        attempt += 1;
        inner.counters.retries.fetch_add(1, Ordering::Relaxed);
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Resolution::TimedOut;
        }
        // The backoff sleep itself is cancellable and deadline-clamped.
        cancel.sleep(inner.backoff.delay(job.id, attempt, remaining));
        if deadline.saturating_duration_since(Instant::now()).is_zero() {
            return Resolution::TimedOut;
        }
    }
}

type AttemptOutcome = Result<Result<(), String>, Box<dyn std::any::Any + Send>>;

/// One attempt on a watchdog-supervised scoped thread: the worker polls
/// the deadline while the body runs and fires the job's cancel token on
/// expiry; the body observes the token at its next cancellation point and
/// unwinds, which drains channels and joins engine task scopes on the way
/// out.
fn run_attempt(
    job: &QueuedJob,
    attempt: u32,
    cancel: &CancelToken,
    deadline: Instant,
    deadline_fired: &AtomicBool,
    slo_fired: &AtomicBool,
) -> AttemptOutcome {
    std::thread::scope(|scope| {
        let body = scope.spawn(|| {
            catch_unwind(AssertUnwindSafe(|| (job.request.run)(attempt, cancel)))
        });
        let mut lag_strikes = 0u32;
        while !body.is_finished() {
            if Instant::now() >= deadline && !cancel.is_set() {
                deadline_fired.store(true, Ordering::Release);
                cancel.set();
            }
            // Liveness: a streaming tenant that stays behind its watermark
            // ceiling for `grace_polls` consecutive slices is failed.
            if let Some(slo) = &job.request.liveness {
                if !cancel.is_set() {
                    if slo.lag.load(Ordering::Acquire) > slo.max_lag_ticks {
                        lag_strikes += 1;
                    } else {
                        lag_strikes = 0;
                    }
                    if lag_strikes >= slo.grace_polls.max(1) {
                        slo_fired.store(true, Ordering::Release);
                        cancel.set();
                    }
                }
            }
            std::thread::sleep(WATCHDOG_SLICE);
        }
        match body.join() {
            Ok(caught) => caught,
            Err(payload) => Err(payload),
        }
    })
}

fn describe_panic(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<flowmark_engine::faults::IntegrityError>() {
        // A corruption that survived the engine's retry budget escalates
        // here as a typed failure; name it so operators can tell data rot
        // from an ordinary crash.
        format!(
            "integrity failure at stage {} partition {} attempt {}: {}",
            e.at.0, e.at.1, e.at.2, e.detail
        )
    } else {
        "attempt panicked".to_string()
    }
}
