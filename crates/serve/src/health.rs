//! Health/readiness snapshot of the job service, serializable alongside
//! `MetricsSnapshot` so soak reports can embed service state next to raw
//! engine counters.

use serde::{Deserialize, Serialize};

use crate::breaker::BreakerState;

/// One tenant's slice of service state: lane occupancy plus cumulative
/// per-tenant outcome counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantHealth {
    /// Tenant identity (a lane of the service's `FairShareConfig`).
    pub tenant: u32,
    /// Jobs backlogged in this tenant's lane.
    pub queued: usize,
    /// Jobs of this tenant currently executing.
    pub in_flight: usize,
    /// Bytes of this tenant's own budget currently reserved.
    pub budget_in_use_bytes: u64,
    /// Submissions accepted into the lane.
    pub admitted: u64,
    /// Submissions shed (any typed `Rejected` naming this tenant).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Cumulative microseconds this tenant's jobs spent queued before a
    /// worker picked them up.
    pub queue_wait_micros: u64,
}

/// Point-in-time service state: queue, budget, breakers, and the
/// cumulative outcome counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Jobs admitted but not yet started.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Bytes of the memory budget currently reserved.
    pub budget_in_use_bytes: u64,
    /// Total memory budget in bytes.
    pub budget_capacity_bytes: u64,
    /// Staged-engine breaker state.
    pub spark_breaker: BreakerState,
    /// Pipelined-engine breaker state.
    pub flink_breaker: BreakerState,
    /// Submissions accepted into the queue.
    pub jobs_admitted: u64,
    /// Submissions shed (queue full, over budget, breaker open, shutdown).
    pub jobs_shed: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs whose every attempt failed.
    pub jobs_failed: u64,
    /// Jobs cancelled by deadline expiry.
    pub jobs_timed_out: u64,
    /// Jobs cancelled explicitly.
    pub jobs_cancelled: u64,
    /// Whole-job retry attempts consumed across all jobs.
    pub job_retries: u64,
    /// Submissions shed specifically by an open breaker (subset of
    /// `jobs_shed`).
    pub breaker_rejections: u64,
    /// Per-tenant lane state, one entry per fair-share tenant. Defaults
    /// to empty so pre-PR-8 snapshots still parse.
    #[serde(default)]
    pub tenants: Vec<TenantHealth>,
}

impl HealthSnapshot {
    /// Whether the service is ready for new work: queue has headroom and
    /// at least one breaker admits traffic.
    pub fn ready(&self, queue_capacity: usize) -> bool {
        self.queue_depth < queue_capacity
            && (self.spark_breaker != BreakerState::Open
                || self.flink_breaker != BreakerState::Open)
    }

    /// Every admitted job is resolved and nothing is queued or running.
    pub fn drained(&self) -> bool {
        self.queue_depth == 0
            && self.in_flight == 0
            && self.jobs_admitted
                == self.jobs_completed
                    + self.jobs_failed
                    + self.jobs_timed_out
                    + self.jobs_cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> HealthSnapshot {
        HealthSnapshot {
            queue_depth: 0,
            in_flight: 0,
            budget_in_use_bytes: 0,
            budget_capacity_bytes: 1 << 30,
            spark_breaker: BreakerState::Closed,
            flink_breaker: BreakerState::Closed,
            jobs_admitted: 5,
            jobs_shed: 2,
            jobs_completed: 3,
            jobs_failed: 1,
            jobs_timed_out: 1,
            jobs_cancelled: 0,
            job_retries: 4,
            breaker_rejections: 1,
            tenants: vec![TenantHealth {
                tenant: 7,
                admitted: 5,
                completed: 3,
                ..TenantHealth::default()
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: HealthSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn pre_tenant_snapshot_json_still_parses() {
        let mut snap = snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let legacy = json.replace(
            &format!(
                ",\"tenants\":{}",
                serde_json::to_string(&snap.tenants).expect("serializes")
            ),
            "",
        );
        assert!(!legacy.contains("tenants"), "field stripped: {legacy}");
        let back: HealthSnapshot = serde_json::from_str(&legacy).expect("legacy parses");
        snap.tenants.clear();
        assert_eq!(back, snap);
    }

    #[test]
    fn drained_accounts_for_every_admitted_job() {
        let mut snap = snapshot();
        assert!(snap.drained());
        snap.jobs_completed = 2;
        assert!(!snap.drained(), "a lost job must be visible");
    }
}
