//! Health/readiness snapshot of the job service, serializable alongside
//! `MetricsSnapshot` so soak reports can embed service state next to raw
//! engine counters.

use serde::{Deserialize, Serialize};

use crate::breaker::BreakerState;

/// Point-in-time service state: queue, budget, breakers, and the
/// cumulative outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Jobs admitted but not yet started.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Bytes of the memory budget currently reserved.
    pub budget_in_use_bytes: u64,
    /// Total memory budget in bytes.
    pub budget_capacity_bytes: u64,
    /// Staged-engine breaker state.
    pub spark_breaker: BreakerState,
    /// Pipelined-engine breaker state.
    pub flink_breaker: BreakerState,
    /// Submissions accepted into the queue.
    pub jobs_admitted: u64,
    /// Submissions shed (queue full, over budget, breaker open, shutdown).
    pub jobs_shed: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs whose every attempt failed.
    pub jobs_failed: u64,
    /// Jobs cancelled by deadline expiry.
    pub jobs_timed_out: u64,
    /// Jobs cancelled explicitly.
    pub jobs_cancelled: u64,
    /// Whole-job retry attempts consumed across all jobs.
    pub job_retries: u64,
    /// Submissions shed specifically by an open breaker (subset of
    /// `jobs_shed`).
    pub breaker_rejections: u64,
}

impl HealthSnapshot {
    /// Whether the service is ready for new work: queue has headroom and
    /// at least one breaker admits traffic.
    pub fn ready(&self, queue_capacity: usize) -> bool {
        self.queue_depth < queue_capacity
            && (self.spark_breaker != BreakerState::Open
                || self.flink_breaker != BreakerState::Open)
    }

    /// Every admitted job is resolved and nothing is queued or running.
    pub fn drained(&self) -> bool {
        self.queue_depth == 0
            && self.in_flight == 0
            && self.jobs_admitted
                == self.jobs_completed
                    + self.jobs_failed
                    + self.jobs_timed_out
                    + self.jobs_cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> HealthSnapshot {
        HealthSnapshot {
            queue_depth: 0,
            in_flight: 0,
            budget_in_use_bytes: 0,
            budget_capacity_bytes: 1 << 30,
            spark_breaker: BreakerState::Closed,
            flink_breaker: BreakerState::Closed,
            jobs_admitted: 5,
            jobs_shed: 2,
            jobs_completed: 3,
            jobs_failed: 1,
            jobs_timed_out: 1,
            jobs_cancelled: 0,
            job_retries: 4,
            breaker_rejections: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: HealthSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn drained_accounts_for_every_admitted_job() {
        let mut snap = snapshot();
        assert!(snap.drained());
        snap.jobs_completed = 2;
        assert!(!snap.drained(), "a lost job must be visible");
    }
}
