//! Admission control: a byte-denominated memory budget plus a bounded
//! multi-tenant queue with deficit-round-robin dequeue, with explicit
//! typed load shedding.
//!
//! The budget is charged at admission (not at dequeue) so the queue can
//! never hold more work than the service has memory to run — the same
//! over-commit discipline §IV of the paper applies to executor memory,
//! lifted to the job level. Every refusal is a typed [`Rejected`]; no
//! submission is ever dropped silently.
//!
//! Dequeue order is **deficit round robin** over per-tenant lanes
//! ([`FairQueue`]): each dequeue pass grants every backlogged, eligible
//! lane `quantum_bytes × weight` of credit, and a lane's head job pops
//! once its credit covers the job's byte cost. The construction is
//! starvation-free: a backlogged lane's credit grows every pass, so its
//! head is served within `⌈cost / (quantum × weight)⌉` passes no matter
//! what the other tenants submit — a bound
//! [`FairQueue::pop_with_rounds`] exposes for the property tests. One
//! unbounded weight-1 lane reduces DRR to the old FIFO exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use flowmark_core::config::{FairShareConfig, TenantSpec};

use crate::job::Rejected;

/// A shared byte budget with reserve/release accounting.
#[derive(Debug)]
pub struct MemoryBudget {
    capacity: u64,
    used: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes, all free.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Attempts to reserve `bytes`; on refusal reports how much was
    /// free. The caller owns shaping the refusal into a typed
    /// [`Rejected`] (which names the refused tenant).
    pub fn try_reserve(&self, bytes: u64) -> Result<(), u64> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let available = self.capacity.saturating_sub(cur);
            if bytes > available {
                return Err(available);
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns a reservation. Releasing more than was reserved is a
    /// service-layer accounting bug and panics loudly.
    pub fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        assert!(prev >= bytes, "budget release underflow: {prev} < {bytes}");
    }
}

/// The serve budget doubles as the external ledger the cross-job
/// fragment cache charges its residency against: cached fragments
/// compete with admitted jobs for the same memory envelope.
impl flowmark_sched::BytesLedger for MemoryBudget {
    fn try_reserve_bytes(&self, bytes: u64) -> bool {
        self.try_reserve(bytes).is_ok()
    }

    fn release_bytes(&self, bytes: u64) {
        self.release(bytes);
    }
}

/// One tenant's lane: its spec, backlog, DRR credit, and running count.
struct Lane<T> {
    spec: TenantSpec,
    /// Backlogged jobs with their byte cost, FIFO within the lane.
    items: VecDeque<(u64, T)>,
    /// Accumulated DRR credit in bytes.
    deficit: u64,
    /// Whether the lane was already granted its quantum for the current
    /// cursor arrival; cleared whenever the cursor advances past it, so
    /// credit accrues exactly once per round-robin visit.
    credited: bool,
    /// Jobs of this tenant currently executing (the "core budget"); a
    /// lane at `spec.max_in_flight` is skipped by the dequeue.
    in_flight: usize,
}

/// Occupancy of one lane, for health snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneDepth {
    /// Tenant identity.
    pub tenant: u32,
    /// Backlogged jobs.
    pub queued: usize,
    /// Currently executing jobs.
    pub in_flight: usize,
}

/// A bounded multi-tenant queue with deficit-round-robin dequeue. Pure
/// data structure (no locking) so scheduling order is directly
/// testable; the service wraps it in a mutex + condvar.
pub struct FairQueue<T> {
    lanes: Vec<Lane<T>>,
    quantum: u64,
    capacity: usize,
    len: usize,
    /// Ring position the next dequeue pass starts from; advanced past
    /// each served lane so visits rotate and every backlogged lane is
    /// inspected at least once every `lanes.len()` pops.
    cursor: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue holding at most `capacity` jobs total, with one
    /// lane per tenant of `fair` (assumed validated).
    pub fn new(fair: &FairShareConfig, capacity: usize) -> Self {
        Self {
            lanes: fair
                .tenants
                .iter()
                .map(|spec| Lane {
                    spec: *spec,
                    items: VecDeque::new(),
                    deficit: 0,
                    credited: false,
                    in_flight: 0,
                })
                .collect(),
            quantum: fair.quantum_bytes,
            capacity,
            len: 0,
            cursor: 0,
        }
    }

    /// Total backlogged jobs across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no job is backlogged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is at its global capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Lane index serving `tenant`, if it is in the tenant table.
    pub fn lane_of(&self, tenant: u32) -> Option<usize> {
        self.lanes.iter().position(|l| l.spec.tenant == tenant)
    }

    /// Enqueues a job of byte cost `cost` at the tail of `lane`, or
    /// sheds with [`Rejected::QueueFull`] when the global bound is hit.
    pub fn push(&mut self, lane: usize, cost: u64, item: T) -> Result<(), Rejected> {
        if self.is_full() {
            return Err(Rejected::QueueFull {
                tenant: self.lanes[lane].spec.tenant,
            });
        }
        self.lanes[lane].items.push_back((cost, item));
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next job under DRR, marking its lane in-flight.
    /// `None` when nothing is backlogged *or* every backlogged lane is
    /// at its in-flight cap (call again after [`FairQueue::job_finished`]).
    pub fn pop(&mut self) -> Option<(usize, T)> {
        self.pop_with_rounds().map(|(lane, item, _)| (lane, item))
    }

    /// [`FairQueue::pop`] exposing how many full lane passes the DRR
    /// scan needed — classic packet-at-a-time DRR:
    ///
    /// * a lane earns `quantum × weight` once per cursor *arrival*
    ///   (tracked by `credited`), not per inspection;
    /// * a lane that pops and stays backlogged keeps the cursor and its
    ///   remaining deficit, so it serves its whole grant as a burst
    ///   before yielding — that is what makes long-run service
    ///   proportional to weight;
    /// * a lane that cannot afford its head yields the cursor and gets a
    ///   fresh grant on the next arrival.
    ///
    /// Starvation-freedom bound the property tests assert: a pop never
    /// needs more than `⌈max_cost / (quantum × min_weight)⌉ + 1` passes,
    /// because every pass grants each backlogged eligible lane at least
    /// `quantum × min_weight` credit.
    pub fn pop_with_rounds(&mut self) -> Option<(usize, T, u64)> {
        // Nothing can pop when every backlogged lane is at its in-flight
        // cap; credit must not accrue while blocked, and eligibility
        // cannot change inside this call.
        if !self
            .lanes
            .iter()
            .any(|l| !l.items.is_empty() && l.in_flight < l.spec.max_in_flight)
        {
            return None;
        }
        let n = self.lanes.len();
        let mut visits = 0u64;
        loop {
            let i = self.cursor;
            let lane = &mut self.lanes[i];
            if lane.items.is_empty() || lane.in_flight >= lane.spec.max_in_flight {
                lane.credited = false;
                self.cursor = (i + 1) % n;
                visits += 1;
                continue;
            }
            if !lane.credited {
                lane.credited = true;
                lane.deficit = lane
                    .deficit
                    .saturating_add(self.quantum.saturating_mul(u64::from(lane.spec.weight)));
            }
            let head_cost = lane.items.front().map(|(c, _)| *c).unwrap_or(0);
            if head_cost <= lane.deficit {
                let (cost, item) = lane.items.pop_front()?;
                lane.deficit -= cost;
                lane.in_flight += 1;
                self.len -= 1;
                if lane.items.is_empty() {
                    // Standard DRR: an idle lane banks no credit.
                    lane.deficit = 0;
                    lane.credited = false;
                    self.cursor = (i + 1) % n;
                }
                // A still-backlogged lane keeps the cursor and its
                // remaining (already-granted) deficit for the next pop.
                return Some((i, item, visits / n as u64 + 1));
            }
            lane.credited = false;
            self.cursor = (i + 1) % n;
            visits += 1;
        }
    }

    /// Records that a job dequeued from `lane` finished, freeing one
    /// in-flight slot (which may make the lane eligible again).
    pub fn job_finished(&mut self, lane: usize) {
        let l = &mut self.lanes[lane];
        assert!(l.in_flight > 0, "in-flight underflow for lane {lane}");
        l.in_flight -= 1;
    }

    /// Per-lane occupancy for health snapshots.
    pub fn depths(&self) -> Vec<LaneDepth> {
        self.lanes
            .iter()
            .map(|l| LaneDepth {
                tenant: l.spec.tenant,
                queued: l.items.len(),
                in_flight: l.in_flight,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fair(tenants: Vec<TenantSpec>, quantum: u64) -> FairShareConfig {
        FairShareConfig {
            tenants,
            quantum_bytes: quantum,
        }
    }

    #[test]
    fn budget_reserve_release_round_trips_to_zero() {
        let budget = MemoryBudget::new(100);
        assert!(budget.try_reserve(60).is_ok());
        assert!(budget.try_reserve(50).is_err(), "over-commit refused");
        assert!(budget.try_reserve(40).is_ok());
        assert_eq!(budget.in_use(), 100);
        budget.release(60);
        budget.release(40);
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn over_budget_reports_availability() {
        let budget = MemoryBudget::new(10);
        budget.try_reserve(7).expect("fits");
        assert_eq!(budget.try_reserve(5), Err(3));
    }

    #[test]
    fn single_unbounded_lane_is_fifo_and_bounded() {
        let mut q = FairQueue::new(&FairShareConfig::default(), 2);
        assert!(q.push(0, 1, 1).is_ok());
        assert!(q.push(0, 1, 2).is_ok());
        assert_eq!(q.push(0, 1, 3), Err(Rejected::QueueFull { tenant: 0 }));
        assert_eq!(q.pop(), Some((0, 1)));
        assert!(q.push(0, 1, 3).is_ok(), "shedding frees no slot, popping does");
        assert_eq!(q.pop(), Some((0, 2)));
        assert_eq!(q.pop(), Some((0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn weights_bias_the_dequeue_share() {
        // Tenant 1 has weight 3, tenant 2 weight 1; with equal unit
        // costs and a deep backlog, the first 8 pops split 6:2.
        let specs = vec![
            TenantSpec {
                weight: 3,
                ..TenantSpec::unbounded(1)
            },
            TenantSpec::unbounded(2),
        ];
        let mut q = FairQueue::new(&fair(specs, 1), 64);
        let (a, b) = (q.lane_of(1).expect("lane"), q.lane_of(2).expect("lane"));
        for i in 0..16 {
            q.push(a, 3, format!("a{i}")).expect("fits");
            q.push(b, 3, format!("b{i}")).expect("fits");
        }
        let mut share = [0usize; 2];
        for _ in 0..8 {
            let (lane, _) = q.pop().expect("backlogged");
            share[lane] += 1;
            q.job_finished(lane); // no cap pressure in this test
        }
        assert_eq!(share, [6, 2], "3:1 weights → 3:1 dequeue share");
    }

    #[test]
    fn lane_at_in_flight_cap_is_skipped_until_a_job_finishes() {
        let specs = vec![
            TenantSpec {
                max_in_flight: 1,
                ..TenantSpec::unbounded(1)
            },
            TenantSpec::unbounded(2),
        ];
        let mut q = FairQueue::new(&fair(specs, 100), 64);
        q.push(0, 1, "a0").expect("fits");
        q.push(0, 1, "a1").expect("fits");
        q.push(1, 1, "b0").expect("fits");
        assert_eq!(q.pop(), Some((0, "a0")), "lane 0 first in ring order");
        // Lane 0 is now at its cap: its second job must wait even
        // though the lane has credit; lane 1 proceeds.
        assert_eq!(q.pop(), Some((1, "b0")));
        assert_eq!(q.pop(), None, "all backlogged lanes capped");
        q.job_finished(0);
        assert_eq!(q.pop(), Some((0, "a1")));
    }

    #[test]
    fn expensive_job_waits_bounded_rounds_not_forever() {
        // A 10-byte job on a quantum-1 weight-1 lane needs exactly 10
        // passes of credit; cheap traffic on the other lane must not
        // push that bound out.
        let specs = vec![TenantSpec::unbounded(1), TenantSpec::unbounded(2)];
        let mut q = FairQueue::new(&fair(specs, 1), 64);
        q.push(0, 10, "fat".to_string()).expect("fits");
        for i in 0..32 {
            q.push(1, 1, format!("thin{i}")).expect("fits");
        }
        let mut pops = 0;
        loop {
            let (lane, _, rounds) = q.pop_with_rounds().expect("backlogged");
            assert!(rounds <= 10, "bounded wait violated: {rounds} rounds");
            pops += 1;
            q.job_finished(lane);
            if lane == 0 {
                break;
            }
            assert!(pops <= 16, "fat job starved behind thin traffic");
        }
    }
}
