//! Admission control: a byte-denominated memory budget plus a bounded
//! FIFO queue, with explicit typed load shedding.
//!
//! The budget is charged at admission (not at dequeue) so the queue can
//! never hold more work than the service has memory to run — the same
//! over-commit discipline §IV of the paper applies to executor memory,
//! lifted to the job level. Every refusal is a typed [`Rejected`]; no
//! submission is ever dropped silently.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::job::Rejected;

/// A shared byte budget with reserve/release accounting.
#[derive(Debug)]
pub struct MemoryBudget {
    capacity: u64,
    used: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes, all free.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Attempts to reserve `bytes`; on refusal reports how much was free.
    pub fn try_reserve(&self, bytes: u64) -> Result<(), Rejected> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let available = self.capacity.saturating_sub(cur);
            if bytes > available {
                return Err(Rejected::OverBudget {
                    needed: bytes,
                    available,
                });
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns a reservation. Releasing more than was reserved is a
    /// service-layer accounting bug and panics loudly.
    pub fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        assert!(prev >= bytes, "budget release underflow: {prev} < {bytes}");
    }
}

/// A bounded FIFO of admitted-but-not-yet-running work. Pure data
/// structure (no locking) so admission ordering is directly testable; the
/// service wraps it in a mutex + condvar.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues at the tail, or sheds with [`Rejected::QueueFull`].
    pub fn push(&mut self, item: T) -> Result<(), Rejected> {
        if self.items.len() >= self.capacity {
            return Err(Rejected::QueueFull);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Dequeues from the head — strict FIFO among admitted items.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reserve_release_round_trips_to_zero() {
        let budget = MemoryBudget::new(100);
        assert!(budget.try_reserve(60).is_ok());
        assert!(budget.try_reserve(50).is_err(), "over-commit refused");
        assert!(budget.try_reserve(40).is_ok());
        assert_eq!(budget.in_use(), 100);
        budget.release(60);
        budget.release(40);
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn over_budget_reports_availability() {
        let budget = MemoryBudget::new(10);
        budget.try_reserve(7).expect("fits");
        match budget.try_reserve(5) {
            Err(Rejected::OverBudget { needed, available }) => {
                assert_eq!((needed, available), (5, 3));
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn queue_sheds_beyond_capacity_and_stays_fifo() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(Rejected::QueueFull));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "shedding frees no slot, popping does");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }
}
