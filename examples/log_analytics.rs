//! Log analytics: the paper's batch workloads (Grep + Word Count) as a
//! realistic pipeline — scan service logs for error lines, then rank the
//! noisiest tokens — and a demonstration of the §VI-B persistence
//! asymmetry: the staged engine can persist the filtered RDD across the
//! two jobs; the pipelined engine recomputes it.
//!
//! ```text
//! cargo run --release --example log_analytics
//! ```

use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::cache::StorageLevel;
use flowmark_engine::{FlinkEnv, SparkContext};

fn main() {
    // Synthetic "service logs": 1 % of lines carry the error marker.
    let config = TextGenConfig {
        needle_selectivity: 0.01,
        needle: "ERROR".to_string(),
        ..TextGenConfig::default()
    };
    let lines = TextGen::new(config, 7).lines(120_000);
    println!("scanning {} log lines for ERROR...\n", lines.len());

    // ---- staged engine: filter once, persist, reuse twice -----------------
    let sc = SparkContext::new(8, 256 << 20);
    let errors = sc
        .parallelize(lines.clone(), 8)
        .filter(|l| l.contains("ERROR"))
        .persist(StorageLevel::MemoryOnly);
    let n_errors = errors.count();
    // Second job over the SAME filtered data: served from the cache.
    let top_tokens = errors
        .flat_map(|l| l.split_whitespace().map(|w| (w.to_string(), 1u64)).collect::<Vec<_>>())
        .reduce_by_key(|a, b| *a += b)
        .collect();
    let spark_computes = sc.metrics().compute_calls();
    let spark_hits = sc.metrics().cache_hits();
    println!(
        "staged engine:    {} error lines, {} distinct tokens; {} partition computations, {} cache hits",
        n_errors,
        top_tokens.len(),
        spark_computes,
        spark_hits
    );

    // ---- pipelined engine: no persistence control (§VI-B) -----------------
    let env = FlinkEnv::new(8);
    let errors_ds = env
        .from_collection(lines.clone())
        .filter(|l| l.contains("ERROR"));
    let n_errors_f = errors_ds.count();
    let top_tokens_f = errors_ds
        .flat_map(|l| l.split_whitespace().map(|w| (w.to_string(), 1u64)).collect::<Vec<_>>())
        .group_reduce(|a, b| *a += b)
        .collect();
    println!(
        "pipelined engine: {} error lines, {} distinct tokens; {} partition computations, no cache",
        n_errors_f,
        top_tokens_f.len(),
        env.metrics().compute_calls()
    );

    assert_eq!(n_errors, n_errors_f);
    assert_eq!(top_tokens.len(), top_tokens_f.len());
    assert!(
        env.metrics().compute_calls() > spark_computes,
        "the engine without persistence control must recompute the filter \
         (the paper's Grep discussion, §VI-B)"
    );
    println!(
        "\nsame answers; the pipelined engine recomputed the filtered data \
         for the second job — the §VI-B asymmetry, observed live ✓"
    );
}
