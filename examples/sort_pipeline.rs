//! TeraSort end to end: generate TeraGen records, range-partition them with
//! the shared TotalOrderPartitioner, sort on both engines, validate the
//! output contract — then regenerate the paper's Fig 8 strong-scaling
//! series with the simulator.
//!
//! ```text
//! cargo run --release --example sort_pipeline
//! ```

use flowmark_core::config::Framework;
use flowmark_core::report::render_figure;
use flowmark_core::experiment::Experiment;
use flowmark_datagen::terasort::TeraGen;
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_sim::{simulate, Calibration};
use flowmark_workloads::presets;
use flowmark_workloads::terasort::{self, TeraSortScale};

fn main() {
    // ---- 1. Real sort on both engines -------------------------------------
    let records = TeraGen::new(2026).records(200_000);
    println!("sorting {} TeraGen records (100 B each)...\n", records.len());

    let sc = SparkContext::new(8, 256 << 20);
    let t = std::time::Instant::now();
    let spark_out = terasort::run_spark(&sc, records.clone(), 16);
    terasort::validate_output(records.len(), &spark_out).expect("spark output contract");
    println!(
        "staged engine:    sorted into {} range partitions in {:?} (shuffled {} records)",
        spark_out.len(),
        t.elapsed(),
        sc.metrics().records_shuffled()
    );

    let env = FlinkEnv::new(8);
    let t = std::time::Instant::now();
    let flink_out = terasort::run_flink(&env, records.clone(), 16);
    terasort::validate_output(records.len(), &flink_out).expect("flink output contract");
    println!(
        "pipelined engine: sorted into {} range partitions in {:?} (peak {} concurrent tasks)",
        flink_out.len(),
        t.elapsed(),
        env.peak_tasks()
    );
    assert_eq!(
        spark_out.into_iter().flatten().collect::<Vec<_>>(),
        flink_out.into_iter().flatten().collect::<Vec<_>>(),
        "both engines must produce the identical total order"
    );
    println!("identical total order from both engines ✓\n");

    // ---- 2. Fig 8 at paper scale: 3.5 TB, 55/73/97 nodes -------------------
    let cal = Calibration::default();
    let scale = TeraSortScale::total_tb(3.5);
    let mut exp = Experiment::new("fig8", "Tera Sort - adding nodes, same dataset (3.5TB)", "Nodes");
    for nodes in [55u32, 73, 97] {
        let run = presets::terasort_config(nodes);
        for fw in Framework::BOTH {
            let plan = terasort::plan(fw, &scale);
            for seed in 0..5 {
                let r = simulate(&plan, fw, &run, &cal, seed).expect("valid");
                exp.record(fw, nodes as f64, r.seconds);
            }
        }
    }
    print!("{}", render_figure(&exp.figure()));
    println!(
        "\nnote the paper's Fig 7/8 signature: Flink ahead on average, with \
         larger error bars — the pipelined run shares one disk between all \
         of its concurrent streams (§VI-C's I/O interference)."
    );
}
