//! Streaming extension (the paper's §VIII future work): micro-batch vs
//! continuous processing of one event stream, answering "does treating
//! batches as finite sets of streamed data pay off?" — latency from the
//! logical-clock model, correctness from the exactly-once runtimes.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use flowmark_datagen::nexmark::{generate, NexmarkConfig};
use flowmark_engine::faults::{install_quiet_hook, CancelToken, FaultConfig, FaultPlan};
use flowmark_engine::streaming::{run_continuous, run_micro_batch, SourceConfig};
use flowmark_engine::EngineMetrics;
use flowmark_workloads::stream::{
    canonical, nexmark_source, q6_operator, q6_oracle, route_nexmark,
};

fn main() {
    // --- Latency: the §VIII question on the logical clock ----------------
    // 2 000 events, one arriving every 2 ticks; the continuous model pays
    // one processing tick, the discretized model waits for its batch
    // boundary.
    let events: Vec<u64> = (0..2_000).collect();
    let classify = |x: &u64| if x % 7 == 0 { 1u32 } else { 0 };

    println!("latency model: 2000 events, one per 2 ticks, both stream models\n");
    let ct = run_continuous(events.clone(), 2, classify);
    println!(
        "continuous (record-at-a-time, Flink model):\n  {} events, {} invocations, latency {:.0} ticks mean / {:.0} max",
        ct.processed, ct.invocations, ct.latency_ticks.mean, ct.latency_ticks.max
    );
    for batch_ticks in [40u64, 200, 800] {
        let mb = run_micro_batch(events.clone(), 2, batch_ticks, |batch| {
            batch.iter().map(classify).collect::<Vec<_>>()
        });
        println!(
            "micro-batch {batch_ticks:>3} ticks (discretized, Spark model):\n  {} events, {} batches, latency {:.0} ticks mean / {:.0} max",
            mb.processed, mb.invocations, mb.latency_ticks.mean, mb.latency_ticks.max
        );
    }

    // --- Exactly-once: windows under kills and rotten checkpoints --------
    install_quiet_hook();
    let src = nexmark_source(
        generate(7, 2_000, &NexmarkConfig::default()),
        SourceConfig::default(),
    );
    let metrics = EngineMetrics::new();
    let out = flowmark_engine::streaming::run_continuous_checkpointed(
        &src,
        |_| q6_operator(),
        route_nexmark,
        &Default::default(),
        &FaultPlan::new(FaultConfig::corruption(42)),
        &metrics,
        &CancelToken::new(),
    );
    let rec = metrics.recovery();
    println!(
        "\nexactly-once drill: q6 windowed aggregate over a Nexmark stream under chaos\n  \
         {} window results committed across {} epochs\n  \
         {} kill(s), {} region restart(s), {} rotten checkpoint(s) rejected, {} snapshot(s) restored\n  \
         oracle match: {}",
        out.committed.len(),
        out.epochs_committed,
        rec.injected_failures,
        rec.region_restarts,
        rec.checkpoints_rejected,
        rec.stream_checkpoints_restored,
        canonical(&out.committed) == q6_oracle(&src),
    );

    println!(
        "\ntake-away: the discretized model's latency floor is ~half its batch \
         interval, while the continuous model stays at processing cost — and \
         with aligned barriers both runtimes commit every window exactly once, \
         even while being killed and fed rotten checkpoints."
    );
}
