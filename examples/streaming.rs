//! Streaming extension (the paper's §VIII future work): micro-batch vs
//! continuous processing of one event stream, answering "does treating
//! batches as finite sets of streamed data pay off?" with latency numbers.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use std::time::Duration;

use flowmark_engine::streaming::{run_continuous, run_micro_batch};

fn main() {
    // A stream of 2 000 sensor-like readings arriving every 250 µs.
    let events: Vec<u64> = (0..2_000).collect();
    let gap = Duration::from_micros(250);
    let classify = |x: &u64| if x % 7 == 0 { 1u32 } else { 0 };

    println!("processing 2000 events (4 kHz arrival rate) through both stream models...\n");

    let ct = run_continuous(events.clone(), gap, classify);
    println!(
        "continuous (record-at-a-time, Flink model):\n  {} events, {} invocations, latency {:.0} µs mean / {:.0} µs max",
        ct.processed, ct.invocations, ct.latency_us.mean, ct.latency_us.max
    );

    for batch_ms in [10u64, 50, 200] {
        let mb = run_micro_batch(
            events.clone(),
            gap,
            Duration::from_millis(batch_ms),
            |batch| batch.iter().map(classify).collect::<Vec<_>>(),
        );
        println!(
            "micro-batch {batch_ms:>3} ms (discretized stream, Spark model):\n  {} events, {} batches, latency {:.0} µs mean / {:.0} µs max",
            mb.processed, mb.invocations, mb.latency_us.mean, mb.latency_us.max
        );
    }

    println!(
        "\ntake-away: the discretized model's latency floor is ~half its batch \
         interval, while the continuous model stays at processing cost — the \
         trade the paper's future work asks about, measured."
    );
}
