//! Quickstart: run the same Word Count on both engines, compare results,
//! then reproduce one cell of the paper's Fig 1 with the simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flowmark_core::config::Framework;
use flowmark_core::report::render_figure;
use flowmark_core::experiment::Experiment;
use flowmark_datagen::text::{TextGen, TextGenConfig};
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_sim::{simulate, Calibration};
use flowmark_workloads::presets;
use flowmark_workloads::wordcount::{self, WordCountScale};

fn main() {
    // ---- 1. Real execution on both engines --------------------------------
    let lines = TextGen::new(TextGenConfig::default(), 42).lines(50_000);
    println!("Word Count over {} synthetic Wikipedia-like lines\n", lines.len());

    let sc = SparkContext::new(8, 256 << 20);
    let t = std::time::Instant::now();
    let spark_counts = wordcount::run_spark(&sc, lines.clone(), 8);
    println!(
        "staged engine (Spark semantics):    {} distinct words in {:?} ({} tasks, combine ratio {:.3})",
        spark_counts.len(),
        t.elapsed(),
        sc.metrics().tasks_launched(),
        sc.metrics().combine_ratio(),
    );

    let env = FlinkEnv::new(8);
    let t = std::time::Instant::now();
    let flink_counts = wordcount::run_flink(&env, lines.clone());
    println!(
        "pipelined engine (Flink semantics): {} distinct words in {:?} (peak {} concurrent tasks)",
        flink_counts.len(),
        t.elapsed(),
        env.peak_tasks(),
    );

    assert_eq!(spark_counts, flink_counts, "engines must agree");
    assert_eq!(spark_counts, wordcount::oracle(&lines), "and match the oracle");
    println!("results identical across engines and oracle ✓\n");

    // ---- 2. Paper-scale simulation (one cell of Fig 1) --------------------
    let nodes = 8;
    let scale = WordCountScale::per_node(nodes, 24.0);
    let run = presets::wordcount_config(nodes);
    let cal = Calibration::default();
    let mut exp = Experiment::new("quickstart", "Word Count, 8 nodes x 24 GB (Fig 1 cell)", "Nodes");
    for fw in Framework::BOTH {
        let plan = wordcount::plan(fw, &scale);
        for seed in 0..5 {
            let r = simulate(&plan, fw, &run, &cal, seed).expect("valid config");
            exp.record(fw, nodes as f64, r.seconds);
        }
    }
    print!("{}", render_figure(&exp.figure()));
}
