//! K-Means clustering: the paper's §VI-D workload, showing the two
//! iteration architectures side by side — driver-loop unrolling over a
//! persisted RDD vs a natively scheduled bulk iteration — plus the Fig 10
//! resource-usage reproduction from the simulator.
//!
//! ```text
//! cargo run --release --example clustering
//! ```

use flowmark_core::correlate::{correlate, CorrelationConfig};
use flowmark_core::report::render_correlation;
use flowmark_datagen::points::{PointsConfig, PointsGen};
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_workloads::kmeans;

fn main() {
    let config = PointsConfig {
        clusters: 6,
        box_half_width: 500.0,
        sigma: 8.0,
    };
    let mut gen = PointsGen::new(config, 11);
    let truth = gen.true_centers().to_vec();
    let points = gen.points(60_000);
    // Deliberately perturbed starting centroids.
    let init: Vec<_> = truth
        .iter()
        .map(|c| flowmark_datagen::points::Point {
            x: c.x + 25.0,
            y: c.y - 25.0,
        })
        .collect();
    println!("clustering {} points around {} hidden centers, 10 iterations\n", points.len(), truth.len());

    // ---- staged engine: loop unrolling -------------------------------------
    let sc = SparkContext::new(8, 256 << 20);
    let t = std::time::Instant::now();
    let spark_centers = kmeans::run_spark(&sc, points.clone(), init.clone(), 10, 8);
    println!(
        "staged engine:    converged in {:?} — {} task launches across 10 unrolled rounds",
        t.elapsed(),
        sc.metrics().tasks_launched()
    );

    // ---- pipelined engine: scheduled once -----------------------------------
    let env = FlinkEnv::new(8);
    let t = std::time::Instant::now();
    let flink_centers = kmeans::run_flink(&env, points.clone(), init.clone(), 10);
    println!(
        "pipelined engine: converged in {:?} — {} worker deployments for all 10 rounds",
        t.elapsed(),
        env.metrics().tasks_launched()
    );

    for (s, f) in spark_centers.iter().zip(&flink_centers) {
        assert!((s.x - f.x).abs() < 1e-9 && (s.y - f.y).abs() < 1e-9);
    }
    // Each learned center should sit near a true one.
    for c in &truth {
        let best = spark_centers
            .iter()
            .map(|p| p.dist2(c).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert!(best < 3.0 * config.sigma, "missed a center by {best:.1}");
    }
    println!("identical centroids from both engines, all near the hidden truth ✓\n");

    // ---- Fig 10: K-Means resource usage at paper scale ---------------------
    use flowmark_core::config::Framework;
    use flowmark_sim::{simulate, Calibration};
    let cal = Calibration::default();
    let scale = kmeans::KMeansScale::paper();
    let run = flowmark_workloads::presets::kmeans_config(24);
    for fw in Framework::BOTH {
        let plan = kmeans::plan(fw, &scale);
        let r = simulate(&plan, fw, &run, &cal, 1).expect("valid");
        let report = correlate(&r.trace, &r.telemetry, &CorrelationConfig::default());
        println!("-- {fw} at 24 nodes, 1.2 B samples (Fig 10): {:.0}s", r.seconds);
        print!("{}", render_correlation(&report));
    }
}
