//! Social-graph analytics: Page Rank and Connected Components on a scaled
//! Twitter-like graph (Table IV's Small preset), on both engines, with the
//! delta-vs-bulk iteration comparison and the solution-set OOM failure mode
//! from Table VII demonstrated live.
//!
//! ```text
//! cargo run --release --example social_graph
//! ```

use flowmark_datagen::graph::GraphPreset;
use flowmark_engine::{FlinkEnv, SparkContext};
use flowmark_workloads::connected::{self, CcVariant};
use flowmark_workloads::pagerank;

fn main() {
    // A laptop-scale instance of the Small (Twitter) graph preserving its
    // edge/vertex ratio (~32 edges per vertex).
    let graph = GraphPreset::Small.scaled(13, 99);
    println!(
        "scaled {} graph: {} vertices, {} edges (paper scale: {}M vertices / {}B edges)\n",
        graph.preset.name(),
        graph.vertices,
        graph.edges.len(),
        GraphPreset::Small.vertices() / 1_000_000,
        GraphPreset::Small.edges() / 1_000_000_000,
    );

    // ---- Page Rank on both engines ----------------------------------------
    let env = FlinkEnv::new(8);
    let t = std::time::Instant::now();
    let flink_ranks = pagerank::run_flink(&env, &graph.edges, 10, 8).expect("fits in memory");
    println!(
        "Flink-style vertex-centric Page Rank: {} ranks in {:?} ({} worker deployments)",
        flink_ranks.len(),
        t.elapsed(),
        env.metrics().tasks_launched()
    );

    let sc = SparkContext::new(8, 256 << 20);
    let t = std::time::Instant::now();
    let spark_ranks = pagerank::run_spark(&sc, &graph.edges, 10, 8);
    println!(
        "Spark-style join-loop Page Rank:      {} ranks in {:?} ({} task launches — loop unrolling)",
        spark_ranks.len(),
        t.elapsed(),
        sc.metrics().tasks_launched()
    );
    let max_diff = flink_ranks
        .iter()
        .map(|(v, r)| (spark_ranks[v] - r).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "engines disagree by {max_diff}");
    let mut top: Vec<_> = flink_ranks.iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    println!("top influencers: {:?}\n", &top[..3.min(top.len())]);

    // ---- Connected Components: delta vs bulk ------------------------------
    let env2 = FlinkEnv::new(8);
    let before = env2.metrics().iterations_run();
    let bulk = connected::run_flink(&env2, &graph.edges, 200, 8, CcVariant::Bulk, None).unwrap();
    let bulk_rounds = env2.metrics().iterations_run() - before;
    let before = env2.metrics().iterations_run();
    let delta = connected::run_flink(&env2, &graph.edges, 200, 8, CcVariant::Delta, None).unwrap();
    let delta_rounds = env2.metrics().iterations_run() - before;
    assert_eq!(bulk, delta);
    let components: std::collections::HashSet<_> = delta.values().collect();
    println!(
        "Connected Components: {} components over {} vertices; bulk ran {} supersteps, delta {} (early convergence)",
        components.len(),
        delta.len(),
        bulk_rounds,
        delta_rounds
    );

    // ---- Table VII's failure mode, in miniature ---------------------------
    let tiny_budget = graph.vertices as usize / 2;
    let err = connected::run_flink(&env2, &graph.edges, 10, 8, CcVariant::Delta, Some(tiny_budget))
        .unwrap_err();
    println!(
        "\nwith an under-provisioned solution set, the delta iteration dies \
         exactly like the paper's 27/44-node runs:\n  {err}"
    );
}
