//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor architecture, this shim routes everything
//! through one dynamic [`Value`] tree: `Serialize` renders a value into a
//! `Value`, `Deserialize` rebuilds it from one. `serde_json` (also
//! vendored) prints and parses that tree. The derive macros come from the
//! vendored `serde_derive` and generate field-by-field `to_value` /
//! `from_value` impls with serde's externally-tagged enum representation,
//! which is enough for the config/figure/calibration round-trips this
//! workspace performs.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (JSON data model).
///
/// `Object` keeps insertion order so serialized output matches field
/// declaration order, like serde_json with preserve_order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a field up in an `Object`.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self(format!("missing field `{field}` for `{ty}`"))
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        let got = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self(format!("expected {what}, got {got}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| DeError::msg(format!("integer {n} overflows i64")))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    /// `&'static str` fields (error-variant parameter names) leak one small
    /// string per deserialization; acceptable for this offline harness.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($s:ident . $idx:tt),+) => $len:literal),*) => {$(
        impl<$($s: Serialize),+> Serialize for ($($s,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($s: Deserialize),+> Deserialize for ($($s,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($s::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected(
                        concat!("array of length ", $len), v)),
                }
            }
        }
    )*};
}

tuple_impls!(
    (A.0, B.1) => 2,
    (A.0, B.1, C.2) => 3,
    (A.0, B.1, C.2, D.3) => 4
);

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// (enum-keyed telemetry tables) round-trip without a key-to-string rule.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    _ => Err(DeError::expected("[key, value] pair", pair)),
                })
                .collect(),
            _ => Err(DeError::expected("array of pairs", v)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    _ => Err(DeError::expected("[key, value] pair", pair)),
                })
                .collect(),
            _ => Err(DeError::expected("array of pairs", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&Some(7u64).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn range_checks_fail_cleanly() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }
}
