//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized testing with the surface this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range/tuple strategies
//! and `prop::collection::vec`. No shrinking — each failing case panics
//! with its case index so it can be replayed (cases are derived purely
//! from the test name and index, so failures reproduce exactly).

/// Deterministic per-test random source (splitmix64 over name × case).
pub mod test_runner {
    /// Mirrors `proptest::test_runner::TestRng` loosely: a seeded stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a stream from the test name and case index, so each
        /// case of each test draws independent but reproducible values.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration; only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Lower than upstream's 256: cases are deterministic here, so
            // extra repetition buys nothing and test time stays bounded.
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of values of one type; `sample` replaces upstream's
    /// value-tree machinery (no shrinking).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f` (upstream's `prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, func: f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.func)(self.source.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    );

    /// Strategy for "any value of T" — see [`crate::arbitrary`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Unconstrained generation for primitive types.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Finite floats across a wide magnitude span (no NaN/inf: the
        /// workloads here treat values as data, not edge-case probes).
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let mag = rng.next_unit_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }
}

/// Constrained generation of "any `T`".
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds `name in strategy` parameters by sampling from the per-case rng.
/// All bindings are made `mut` (with the lint silenced) so the upstream
/// `mut name in strategy` spelling needs no separate expansion path.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1usize..64, y in -1e6f64..1e6) {
            prop_assert!((1..64).contains(&x));
            prop_assert!((-1e6..1e6).contains(&y));
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((0u32..50, 1u64..100), 0..400)) {
            prop_assert!(pairs.len() < 400);
            for (k, v) in pairs {
                prop_assert!(k < 50);
                prop_assert!((1..100).contains(&v));
            }
        }

        #[test]
        fn mut_bindings_work(mut xs in prop::collection::vec(any::<u32>(), 0..20)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and multiple attributes must pass through.
        #[test]
        fn config_block_applies(seed in any::<u64>(), n in 1usize..200) {
            let _ = (seed, n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..1000, 1..50);
        let a = s.sample(&mut TestRng::for_case("t", 3));
        let b = s.sample(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
