//! Offline stand-in for `rand`.
//!
//! Deterministic generators for the datagen and test surface this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range` over integer/float ranges. `SmallRng` here is a
//! splitmix64 generator — statistically solid for workload synthesis and
//! fully reproducible for a fixed seed, which is the property the harness
//! relies on (the exact stream differs from upstream rand's xoshiro, so
//! seeds identify datasets only within this repo).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point; only the `seed_from_u64` constructor is needed here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait FromRandom: Sized {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for f64 {
    /// Uniform in [0, 1) using the top 53 bits.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in [0, 1) using the top 24 bits.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`]; parameterized over the
/// output type (like upstream) so integer literals in ranges infer from
/// the expected result type.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as FromRandom>::from_random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..120u64);
            assert!(v < 120);
            let w = rng.gen_range(1..5);
            assert!((1..5).contains(&w));
            let b = rng.gen_range(b' '..=b'~');
            assert!((b' '..=b'~').contains(&b));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "unit floats should span the interval");
    }
}
