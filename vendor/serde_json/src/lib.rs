//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde's [`serde::Value`] tree as JSON:
//! `to_string`, `to_string_pretty` and `from_str`, which is the full
//! surface the harness uses (figure export, calibration round-trips).

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self(e.0)
    }
}

// ---- rendering ------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) -> Result<(), Error> {
    if !f.is_finite() {
        return Err(Error::msg("JSON cannot represent NaN/infinite floats"));
    }
    // Rust's shortest-roundtrip Display never emits exponents, so the
    // output is always valid JSON; force a fraction so floats stay floats.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') {
        out.push_str(".0");
    }
    Ok(())
}

fn write_compact(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out)?,
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(fv, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(fv, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.eat_literal("null").map(|_| Value::Null),
            b't' => self.eat_literal("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_literal("false").map(|_| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Array(vec![Value::Str("x\n\"".into()), Value::Null])),
            ("d".into(), Value::Int(-3)),
            ("e".into(), Value::Bool(true)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aéb""#).unwrap();
        assert_eq!(v, Value::Str("aéb".into()));
    }
}
