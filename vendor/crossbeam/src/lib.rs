//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module surface this workspace uses is provided:
//! bounded MPSC channels with blocking `send` (backpressure), `recv`,
//! `recv_timeout` and draining iteration — implemented over
//! `std::sync::mpsc::sync_channel`.

pub mod channel {
    //! Bounded channels acting as network buffers (see `flink::exec`).

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by a failed non-blocking send: the channel was full
    /// or disconnected; either way the value comes back to the caller.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; a blocking send would wait.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    /// Error returned when sending on a disconnected channel.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without a `T: Debug` bound, so `.unwrap()`
    // works on sends of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of a bounded channel. Clonable; `send` blocks while
    /// the channel is full (backpressure).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; fails only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send: hands the value back instead of waiting when
        /// the channel is full, letting callers observe backpressure.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight records;
    /// `cap == 0` is a rendezvous channel, as in crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_drain() {
            let (tx, rx) = bounded(4);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let all: Vec<i32> = rx.iter().collect();
            assert_eq!(all, vec![1, 2]);
        }

        #[test]
        fn backpressure_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let got: Vec<i32> = rx.iter().collect();
                assert_eq!(got.len(), 100);
            });
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            assert!(matches!(
                tx.try_send(3),
                Err(TrySendError::Disconnected(3))
            ));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
