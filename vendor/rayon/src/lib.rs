//! Offline stand-in for `rayon`.
//!
//! Provides real (thread-based) data parallelism for the small API surface
//! this workspace uses: `into_par_iter()` / `par_iter_mut()` with `map`,
//! `zip`, `for_each` and `collect`. Work is split into one contiguous chunk
//! per available core and executed on scoped threads, so engine code that
//! benchmarks parallel speedups still exercises genuine concurrency.
//!
//! Unlike real rayon this is eager: `map` runs its closure across a thread
//! pool immediately and stores the results; `collect` then just moves them
//! out. That preserves ordering and side-effect semantics for the
//! fork-join patterns used here (independent per-partition tasks).

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Runs `f` over every element of `items` in parallel, returning outputs in
/// input order. Elements are split into one contiguous chunk per worker.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);

    // Collect per-chunk output vectors, then stitch them back in order.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    let f = &f;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// An eager parallel iterator over an owned buffer of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`]; blanket-implemented for any owned
/// `IntoIterator`, mirroring rayon's `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Mirror of rayon's `par_iter_mut()` for slice-like containers.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut {
            items: self.as_mut_slice(),
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over `&mut T` chunks of a slice.
pub struct ParIterMut<'data, T: Send> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Applies `f` to every element in parallel (chunked by core count).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return;
        }
        let workers = worker_count().min(n);
        let chunk = n.div_ceil(workers);
        let f = &f;
        std::thread::scope(|s| {
            for part in self.items.chunks_mut(chunk) {
                s.spawn(move || part.iter_mut().for_each(f));
            }
        });
    }
}

/// The operations available on a [`ParIter`]; named after rayon's trait so
/// `use rayon::prelude::*` brings the same methods into scope.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_inner_vec(self) -> Vec<Self::Item>;

    /// Parallel map, preserving input order.
    fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.into_inner_vec(), f),
        }
    }

    /// Parallel for_each.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        parallel_map(self.into_inner_vec(), |t| f(t));
    }

    /// Pairs this iterator with another, truncating to the shorter side.
    fn zip<J>(self, other: J) -> ParIter<(Self::Item, J::Item)>
    where
        J: IntoParallelIterator,
    {
        let items = self
            .into_inner_vec()
            .into_iter()
            .zip(other.into_par_iter().items)
            .collect();
        ParIter { items }
    }

    /// Materialises the (already computed) results.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_inner_vec().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_inner_vec(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<i64> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn map_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        (0..256).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        // With >1 core this should engage >1 worker; tolerate 1 on tiny CI.
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn zip_then_map() {
        let left = vec![1, 2, 3];
        let right = vec![10, 20, 30];
        let out: Vec<i32> = left
            .into_par_iter()
            .zip(right)
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out, vec![11, 22, 33]);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut v: Vec<u32> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..101).collect::<Vec<u32>>());
    }
}
