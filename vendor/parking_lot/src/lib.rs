//! Offline stand-in for `parking_lot`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `parking_lot` to this shim: `Mutex`/`RwLock` with the (non-poisoning)
//! parking_lot API, backed by `std::sync`. Poisoned locks are recovered
//! rather than propagated, matching parking_lot's no-poisoning contract.

use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new RwLock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
