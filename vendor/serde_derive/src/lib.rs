//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's value-tree `Serialize`/`Deserialize`
//! traits without `syn`/`quote` (unavailable offline): the item is parsed
//! directly from the `proc_macro::TokenStream` and the impl is emitted as
//! a source string. Supported shapes are exactly what this workspace
//! declares — non-generic named structs, tuple structs, and enums with
//! unit / newtype / tuple / struct variants (externally tagged, like
//! serde) — plus the `#[serde(default)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    /// One unnamed payload (serde's newtype representation).
    Newtype,
    /// `n` unnamed payloads, serialized as an array.
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let body = g.stream().to_string();
                // Matches `serde(default)` with arbitrary whitespace.
                let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
                if compact.starts_with("serde(") && compact.contains("default") {
                    has_default = true;
                }
            }
            other => panic!("serde stub derive: malformed attribute near {other:?}"),
        }
    }
    has_default
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(i)) = tokens.peek() {
        if i.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes one type, i.e. tokens until a top-level `,` (angle-depth aware;
/// parens/brackets/braces arrive pre-grouped). Returns false at end of input.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle_depth = 0i32;
    let mut saw_any = false;
    loop {
        match tokens.peek() {
            None => return saw_any,
            Some(TokenTree::Punct(p)) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    tokens.next();
                    return true;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' {
                    angle_depth -= 1;
                }
                tokens.next();
                saw_any = true;
            }
            Some(_) => {
                tokens.next();
                saw_any = true;
            }
        }
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// enum variants).
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let has_default = skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, has_default });
    }
    fields
}

/// Counts the comma-separated type slots in a tuple struct/variant body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut tokens = group.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        if !skip_type(&mut tokens) {
            break;
        }
        arity += 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Discriminants (`= expr`) and the separating comma.
        while let Some(tt) = tokens.peek() {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    tokens.next();
                    break;
                }
            }
            tokens.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kw = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported offline");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde stub derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stub derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

// ---- code generation ------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__x0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_fields_build(ty: &str, path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fallback = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(\
                 ::serde::DeError::missing_field(\"{ty}\", \"{0}\"))",
                f.name
            )
        };
        inits.push_str(&format!(
            "{0}: match {source}.get_field(\"{0}\") {{\n\
                 ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                 ::std::option::Option::None => {fallback},\n\
             }},\n",
            f.name
        ));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let build = gen_named_fields_build(name, name, fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if __v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"object for {name}\", __v));\n\
                         }}\n\
                         ::std::result::Result::Ok({build})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         _ => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"array for {name}\", __v)),\n\
                     }}",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged form `{"Variant": null}`.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{vn}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                                     \"array payload for {name}::{vn}\", __payload)),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let build = gen_named_fields_build(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "__payload",
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 if __payload.as_object().is_none() {{\n\
                                     return ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\
                                         \"object payload for {name}::{vn}\", __payload));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({build})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__fields[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{name} variant\", __v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde stub derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde stub derive: generated Deserialize impl must parse")
}
