//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface the
//! `flowmark-bench` targets use: `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group` + `throughput`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//! No statistics engine — it reports mean wall-clock per iteration (and
//! derived throughput) to stdout, which is all the repro harness needs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized; carried for API compatibility only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far below real criterion's 100: these are offline smoke runs.
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Builder stub: accepted and ignored (no statistics engine).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name.as_ref(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work size for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Builder stub mirroring `Criterion::sample_size` at group scope.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records per-iteration timing.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {name:<48} mean {mean:>12?}  {rate:>12.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {name:<48} mean {mean:>12?}  {rate:>12.0} B/s");
        }
        _ => println!("bench {name:<48} mean {mean:>12?}"),
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(name, target_a, target_b)` and the config form
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
